"""The independent cascade (IC) model (paper Section 2.1).

A node activated at timestamp ``i`` gets exactly one chance to activate each
currently inactive out-neighbour ``v`` at ``i + 1``, succeeding with the
edge's probability ``p(e)``.  Because every edge is tried at most once, the
process is equivalent to the *live-edge* construction the paper builds RR
sets on: keep each edge independently with probability ``p(e)`` and take
forward reachability from the seeds (Kempe et al.'s Theorem, restated in the
paper's Section 2.2).
"""

from __future__ import annotations

from collections import deque

from repro.diffusion.base import DiffusionModel, register_model
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, resolve_rng

__all__ = ["IndependentCascade", "simulate_ic", "live_edge_reachable_ic"]


class IndependentCascade(DiffusionModel):
    """Stateless IC model; edge probabilities live on the graph."""

    name = "IC"

    def simulate(self, graph: DiGraph, seeds, rng: RandomSource) -> set[int]:
        return simulate_ic(graph, seeds, rng)


def simulate_ic(graph: DiGraph, seeds, rng=None) -> set[int]:
    """One IC propagation process; returns all activated nodes.

    Implementation is a randomized forward BFS: when ``u`` activates we flip
    one coin per out-edge to an inactive target.  A failed flip never recurs
    — matching step 2 of the model, "after timestamp i + 1, u cannot
    activate any node".
    """
    source = resolve_rng(rng)
    random01 = source.py.random
    out_adj, out_probs = graph.out_adjacency()
    activated = set(int(s) for s in seeds)
    queue = deque(activated)
    while queue:
        current = queue.popleft()
        neighbors = out_adj[current]
        probs = out_probs[current]
        for index in range(len(neighbors)):
            target = neighbors[index]
            if target not in activated and random01() < probs[index]:
                activated.add(target)
                queue.append(target)
    return activated


def live_edge_reachable_ic(graph: DiGraph, seeds, rng=None) -> set[int]:
    """The live-edge formulation: sample ``g`` by keeping each edge w.p.
    ``p(e)``, then return the nodes reachable from ``seeds`` in ``g``.

    Distributionally identical to :func:`simulate_ic`; kept as a separate
    entry point because tests verify exactly this equivalence and because
    it matches Definition 1's construction verbatim.
    """
    source = resolve_rng(rng)
    keep = source.np.random(graph.m) < graph.prob
    live_out: list[list[int]] = [[] for _ in range(graph.n)]
    src = graph.src[keep].tolist()
    dst = graph.dst[keep].tolist()
    for u, v in zip(src, dst):
        live_out[u].append(v)
    visited = set(int(s) for s in seeds)
    queue = deque(visited)
    while queue:
        current = queue.popleft()
        for target in live_out[current]:
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited


register_model("ic", IndependentCascade)
