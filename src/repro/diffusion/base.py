"""Diffusion-model abstraction.

A *diffusion model* turns a weighted digraph plus a seed set into a random
set of activated nodes.  Everything downstream (Monte-Carlo spread
estimation, the Greedy/CELF baselines, RR-set sampling) is written against
this small interface, so adding a model means implementing two methods and
registering a sampler.

Models are resolved by :func:`resolve_model`, which accepts an instance or
one of the registered names (``"IC"``, ``"LT"``, ``"triggering"`` requires an
instance since it carries per-node distributions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource

__all__ = ["DiffusionModel", "resolve_model", "register_model", "model_names"]


class DiffusionModel(ABC):
    """Abstract influence-propagation model.

    Subclasses must set :attr:`name` and implement :meth:`simulate`.
    :meth:`validate_graph` may raise to reject graphs whose weights are not
    admissible for the model (e.g. LT weight sums exceeding one).
    """

    #: Registry key; also used in results and reports.
    name: str = "abstract"

    @abstractmethod
    def simulate(self, graph: DiGraph, seeds, rng: RandomSource) -> set[int]:
        """Run one propagation process; return the set of activated nodes.

        ``seeds`` is an iterable of node ids; the returned set always
        contains the seeds (a node activates itself).
        """

    def validate_graph(self, graph: DiGraph) -> None:
        """Raise ``ValueError`` when the graph's weights are inadmissible."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type] = {}


def register_model(name: str, factory: type) -> None:
    """Register a zero-argument model factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.lower()] = factory


def model_names() -> list[str]:
    """Registered model names."""
    return sorted(_REGISTRY)


def resolve_model(model) -> DiffusionModel:
    """Normalise a model argument: instance pass-through or registry lookup."""
    if isinstance(model, DiffusionModel):
        return model
    if isinstance(model, str):
        key = model.lower()
        if key in _REGISTRY:
            return _REGISTRY[key]()
        raise ValueError(f"unknown model {model!r}; known: {model_names()}")
    raise TypeError(f"model must be a DiffusionModel or str; got {type(model).__name__}")
