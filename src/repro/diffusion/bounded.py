"""Time-critical (bounded-horizon) independent cascade.

The paper's related work cites Chen, Lu & Zhang [4]: influence maximization
when the propagation process terminates after a fixed number of timestamps
``T``.  Under IC this is still a live-edge process — a node activates within
``T`` steps iff the live graph has a path of length ≤ T from the seeds — so
the entire RR-set machinery carries over with *depth-truncated* reverse BFS
(see :class:`repro.rrset.ic_sampler.ICRRSampler`'s ``max_depth``).

This module provides the forward model; pair it with
``make_rr_sampler(graph, BoundedIndependentCascade(T))`` and the TIM drivers
work unchanged (the Chernoff analysis never looks inside the RR sets).
"""

from __future__ import annotations

from collections import deque

from repro.diffusion.base import DiffusionModel
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["BoundedIndependentCascade", "simulate_bounded_ic"]


class BoundedIndependentCascade(DiffusionModel):
    """IC that halts after ``max_steps`` activation rounds.

    ``max_steps = 1`` means seeds activate only their direct out-neighbours;
    as ``max_steps -> infinity`` the model converges to plain IC.
    """

    name = "bounded-IC"

    def __init__(self, max_steps: int):
        check_positive_int(max_steps, "max_steps")
        self.max_steps = max_steps

    def simulate(self, graph: DiGraph, seeds, rng: RandomSource) -> set[int]:
        return simulate_bounded_ic(graph, seeds, self.max_steps, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedIndependentCascade(max_steps={self.max_steps})"


def simulate_bounded_ic(graph: DiGraph, seeds, max_steps: int, rng=None) -> set[int]:
    """One bounded-horizon IC run: BFS with per-node depth accounting."""
    check_positive_int(max_steps, "max_steps")
    source = resolve_rng(rng)
    random01 = source.py.random
    out_adj, out_probs = graph.out_adjacency()
    activated = set(int(s) for s in seeds)
    queue = deque((node, 0) for node in activated)
    while queue:
        current, depth = queue.popleft()
        if depth >= max_steps:
            continue
        neighbors = out_adj[current]
        probs = out_probs[current]
        for index in range(len(neighbors)):
            target = neighbors[index]
            if target not in activated and random01() < probs[index]:
                activated.add(target)
                queue.append((target, depth + 1))
    return activated
