"""The general triggering model (paper Section 4.2).

Each node ``v`` owns a *triggering distribution* ``T(v)`` over subsets of its
in-neighbours.  A propagation run samples one triggering set per node; ``v``
activates when any already-active node appears in its sampled set.

The paper shows IC and LT are special cases:

* IC — each in-neighbour of ``v`` enters the set independently with the
  probability of its edge (:class:`ICTriggering`);
* LT — the set is empty or a singleton, neighbour ``u`` chosen with
  probability ``w(u, v)`` (:class:`LTTriggering`).

:class:`TriggeringModel` runs forward propagation for *any* distribution,
sampling triggering sets lazily (each node's set is drawn at most once per
run, on first contact — distributionally identical to sampling all ``n``
sets upfront, but ``O(touched)`` instead of ``O(n)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

from repro.diffusion.base import DiffusionModel
from repro.graphs.digraph import DiGraph
from repro.graphs.weights import validate_lt_weights
from repro.utils.rng import RandomSource, resolve_rng

__all__ = [
    "TriggeringDistribution",
    "ICTriggering",
    "LTTriggering",
    "FixedTriggering",
    "TriggeringModel",
]


class TriggeringDistribution(ABC):
    """Per-graph family of triggering distributions, one per node."""

    def __init__(self, graph: DiGraph):
        self.graph = graph
        self._in_adj, self._in_probs = graph.in_adjacency()

    @abstractmethod
    def sample(self, node: int, rng: RandomSource) -> list[int]:
        """Draw one triggering set for ``node`` (a list of in-neighbour ids)."""

    def validate(self) -> None:
        """Raise when the underlying graph weights are inadmissible."""


class ICTriggering(TriggeringDistribution):
    """Independent per-in-edge inclusion — makes triggering ≡ IC."""

    def sample(self, node: int, rng: RandomSource) -> list[int]:
        random01 = rng.py.random
        neighbors = self._in_adj[node]
        probs = self._in_probs[node]
        return [
            neighbors[i] for i in range(len(neighbors)) if random01() < probs[i]
        ]


class LTTriggering(TriggeringDistribution):
    """At most one in-neighbour, chosen by weight — makes triggering ≡ LT."""

    def validate(self) -> None:
        validate_lt_weights(self.graph)

    def sample(self, node: int, rng: RandomSource) -> list[int]:
        neighbors = self._in_adj[node]
        if not neighbors:
            return []
        draw = rng.py.random()
        cumulative = 0.0
        weights = self._in_probs[node]
        for index in range(len(neighbors)):
            cumulative += weights[index]
            if draw < cumulative:
                return [neighbors[index]]
        return []


class FixedTriggering(TriggeringDistribution):
    """Deterministic distribution returning a fixed set per node.

    Handy in tests: the propagation outcome becomes the deterministic
    reachability in the graph whose in-edges are the fixed sets.  Sets must
    be subsets of each node's in-neighbours.
    """

    def __init__(self, graph: DiGraph, sets: dict[int, list[int]]):
        super().__init__(graph)
        for node, chosen in sets.items():
            allowed = set(self._in_adj[node])
            bad = [u for u in chosen if u not in allowed]
            if bad:
                raise ValueError(f"triggering set of node {node} contains non-in-neighbours {bad}")
        self._sets = {node: list(chosen) for node, chosen in sets.items()}

    def sample(self, node: int, rng: RandomSource) -> list[int]:
        return self._sets.get(node, [])


class TriggeringModel(DiffusionModel):
    """Forward propagation under an arbitrary triggering distribution."""

    name = "triggering"

    def __init__(self, distribution: TriggeringDistribution):
        self.distribution = distribution

    def validate_graph(self, graph: DiGraph) -> None:
        if graph is not self.distribution.graph:
            raise ValueError("TriggeringModel is bound to a different graph instance")
        self.distribution.validate()

    def simulate(self, graph: DiGraph, seeds, rng: RandomSource) -> set[int]:
        source = resolve_rng(rng)
        out_adj, _ = graph.out_adjacency()
        activated = set(int(s) for s in seeds)
        # node -> sampled triggering set (as a set, for O(1) membership).
        sampled: dict[int, set[int]] = {}
        queue = deque(activated)
        while queue:
            current = queue.popleft()
            for target in out_adj[current]:
                if target in activated:
                    continue
                if target not in sampled:
                    sampled[target] = set(self.distribution.sample(target, source))
                if current in sampled[target]:
                    activated.add(target)
                    queue.append(target)
        return activated
