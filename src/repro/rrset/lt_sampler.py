"""RR-set sampling under the linear threshold model.

Under LT the triggering set of every node is empty or a single in-neighbour
(chosen with probability equal to the edge weight), so the reverse traversal
degenerates into a random walk: from the root repeatedly hop to one sampled
in-neighbour, stopping when the draw lands in the "no neighbour" mass or the
walk revisits a node (Section 4.2; the paper's Section 7.2 notes this is why
LT needs one random number per *node* instead of one per *edge*).
"""

from __future__ import annotations

from repro.diffusion.linear_threshold import sample_lt_in_edge
from repro.graphs.digraph import DiGraph
from repro.graphs.weights import validate_lt_weights
from repro.rrset.base import RRSampler, RRSet
from repro.utils.rng import RandomSource

__all__ = ["LTRRSampler"]


class LTRRSampler(RRSampler):
    """Reverse random walk generating LT RR sets."""

    model_name = "LT"

    def __init__(self, graph: DiGraph):
        super().__init__(graph)
        validate_lt_weights(graph)
        self._in_adj, self._in_weights = graph.in_adjacency()

    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        random01 = rng.py.random
        in_adj = self._in_adj
        in_weights = self._in_weights

        visited = {root}
        order = [root]
        current = root
        steps = 0
        while True:
            parent = sample_lt_in_edge(in_adj[current], in_weights[current], random01)
            steps += 1
            if parent is None or parent in visited:
                break
            visited.add(parent)
            order.append(parent)
            current = parent
        width = self.width_of(order)
        # One draw (≈ one edge examined) per visited node, plus the nodes.
        return RRSet(root=root, nodes=tuple(order), width=width, cost=len(order) + steps)
