"""RR-set sampling under the linear threshold model.

Under LT the triggering set of every node is empty or a single in-neighbour
(chosen with probability equal to the edge weight), so the reverse traversal
degenerates into a random walk: from the root repeatedly hop to one sampled
in-neighbour, stopping when the draw lands in the "no neighbour" mass or the
walk revisits a node (Section 4.2; the paper's Section 7.2 notes this is why
LT needs one random number per *node* instead of one per *edge*).

Vectorised path (:meth:`LTRRSampler.sample_batch`): many walks advance in
lockstep, one wave per hop.  The inverse-CDF edge pick becomes a single
``searchsorted`` against the global prefix sum of ``in_prob`` — for walk at
node ``v`` with CSR slice ``[lo, hi)`` and uniform draw ``r``, the live
in-edge is the first position whose cumulative weight exceeds
``prefix[lo] + r``, and ``r >= Σ w`` is the "no neighbour" stop — while
revisit detection reuses the IC engine's visited-bitmap row pool (one row
per in-flight walk).  Same distribution as the scalar walk, not
draw-for-draw identical (batched draws consume the RNG in a different
order); the whole batch lands in one packed
:class:`~repro.rrset.flat_collection.FlatRRCollection`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.graphs.weights import validate_lt_weights
from repro.obs import runtime as obs
from repro.obs.registry import SIZE_BUCKETS
from repro.rrset.base import RRSampler, RRSet
from repro.rrset.flat_collection import FlatRRCollection
from repro.utils.rng import RandomSource, resolve_rng

__all__ = ["LTRRSampler"]


def _pick_in_edge_index(in_weights, random01) -> int | None:
    """Index-returning twin of :func:`sample_lt_in_edge`.

    Identical RNG consumption (no draw for in-degree-0 nodes, one uniform
    otherwise) and identical cumulative float arithmetic, so it picks the
    same in-edge — but returns its *position* in the CSR slice, which is
    what edge tracing records.
    """
    if not in_weights:
        return None
    draw = random01()
    cumulative = 0.0
    for index in range(len(in_weights)):
        cumulative += in_weights[index]
        if draw < cumulative:
            return index
    return None


class LTRRSampler(RRSampler):
    """Reverse random walk generating LT RR sets."""

    model_name = "LT"

    #: Visited-bitmap row pool bounds, matching the IC engine's sweet spot
    #: (at most this many boolean cells / concurrent walks per chunk).
    BATCH_CHUNK_CELLS = 16 << 20
    BATCH_CHUNK_MAX = 8192

    #: When fewer than this many walks are still alive, the chunk's
    #: stragglers are finished by the scalar walk: numpy call overhead
    #: dominates waves this small, and long walks (deep LT chains) would
    #: otherwise pay it once per hop.
    TAIL_CUTOVER_WALKS = 64

    def __init__(self, graph: DiGraph, trace_edges: bool = False):
        super().__init__(graph)
        validate_lt_weights(graph)
        #: Record the chosen live in-edge (in-CSR id) of every visited node.
        #: The traced pick consumes the RNG exactly like the untraced one
        #: (one uniform per visited node, same cumulative scan), so traced
        #: and untraced runs walk identical chains.
        self.trace_edges = bool(trace_edges)
        # Lazy caches: Python adjacency for the scalar walk only (pool
        # workers drive the vectorised path and never materialise it),
        # plus the vectorised-path arrays built on first sample_batch call.
        self._adj: tuple[list[list[int]], list[list[float]]] | None = None
        self._cumw: np.ndarray | None = None
        self._prefix: np.ndarray | None = None
        self._np_in_deg: np.ndarray | None = None

    def _adjacency(self) -> tuple[list[list[int]], list[list[float]]]:
        if self._adj is None:
            self._adj = self.graph.in_adjacency()
        return self._adj

    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        random01 = rng.py.random
        in_adj, in_weights = self._adjacency()
        in_ptr = self.graph.in_ptr
        trace: list[int] | None = [] if self.trace_edges else None

        visited = {root}
        order = [root]
        current = root
        steps = 0
        while True:
            index = _pick_in_edge_index(in_weights[current], random01)
            steps += 1
            if index is None:
                break
            if trace is not None:
                trace.append(int(in_ptr[current]) + index)
            parent = in_adj[current][index]
            if parent in visited:
                break
            visited.add(parent)
            order.append(parent)
            current = parent
        width = self.width_of(order)
        # One draw (≈ one edge examined) per visited node, plus the nodes.
        return RRSet(
            root=root,
            nodes=tuple(order),
            width=width,
            cost=len(order) + steps,
            trace=None if trace is None else tuple(trace),
        )

    # ------------------------------------------------------------------
    # Vectorised batch path
    # ------------------------------------------------------------------
    def _ensure_vector_state(self) -> None:
        if self._cumw is not None:
            return
        self._np_in_deg = self.graph.in_degrees()
        self._cumw = np.cumsum(self.graph.in_prob)
        # prefix[i] = Σ in_prob[:i], so a node's in-weight mass over CSR
        # slice [lo, hi) is prefix[hi] - prefix[lo].
        self._prefix = np.concatenate(([0.0], self._cumw))

    def sample_batch(self, roots, rng) -> FlatRRCollection:
        """Generate one LT RR set per root with numpy-batched walk waves.

        Matches :meth:`sample_rooted` in distribution but not draw-for-draw
        (a wave draws one uniform per live walk at once, including walks at
        in-degree-0 nodes whose scalar counterpart stops without drawing).
        """
        source = resolve_rng(rng)
        self._ensure_vector_state()
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        n = self.graph.n
        out = FlatRRCollection(n, self.graph.m, track_traces=self.trace_edges)
        if roots.size == 0:
            return out
        rows = max(1, min(self.BATCH_CHUNK_MAX, self.BATCH_CHUNK_CELLS // max(n, 1)))
        rows = min(rows, int(roots.size))
        visited = np.zeros((rows, n), dtype=bool)
        with obs.trace("sampling.lt_batch", sets=int(roots.size)):
            for start in range(0, roots.size, rows):
                self._walk_chunk(roots[start : start + rows], source, out, visited)
        if obs.enabled():
            obs.add("rr.sets", int(roots.size))
            obs.add("rr.cost", int(out.costs_array.sum()))
            obs.observe_many("rr.width", out.widths_array, bounds=SIZE_BUCKETS)
        return out

    def _walk_chunk(
        self,
        chunk_roots: np.ndarray,
        source,
        out: FlatRRCollection,
        visited: np.ndarray,
    ) -> None:
        """Advance every walk of the chunk one hop per wave until all stop.

        ``visited`` is an all-False scratch matrix with at least
        ``len(chunk_roots)`` rows (walk ``i`` owns row ``i``); touched cells
        are cleared before return.
        """
        graph = self.graph
        in_ptr = graph.in_ptr
        cumw = self._cumw
        prefix = self._prefix
        batch = int(chunk_roots.size)
        sample_ids = np.arange(batch, dtype=np.int64)
        visited[sample_ids, chunk_roots] = True
        member_samples = [sample_ids]
        member_nodes = [chunk_roots]
        trace_samples: list[np.ndarray] | None = [] if self.trace_edges else None
        trace_edge_ids: list[np.ndarray] | None = [] if self.trace_edges else None

        active_s, active_v = sample_ids, chunk_roots
        while active_v.size:
            if active_v.size <= self.TAIL_CUTOVER_WALKS:
                self._finish_tail(
                    active_s, active_v, visited, source, member_samples, member_nodes,
                    trace_samples, trace_edge_ids,
                )
                break
            draws = source.np.random(active_v.size)
            lo = in_ptr[active_v]
            hi = in_ptr[active_v + 1]
            base = prefix[lo]
            total = prefix[hi] - base
            cont = draws < total  # else the "no live in-edge" mass: walk ends
            if not cont.any():
                break
            walk_s = active_s[cont]
            # Inverse CDF over the node's CSR weight slice, done globally:
            # first edge position whose cumulative weight exceeds the draw.
            edge = np.searchsorted(cumw, base[cont] + draws[cont], side="right")
            # `total` can round a hair above the true weight sum, letting a
            # draw in that float sliver pass `cont` with base + draw beyond
            # the node's last cumulative entry — clamp into the CSR slice so
            # such a draw takes the last in-edge instead of a neighbour
            # node's edge (or an out-of-bounds index at the array end).
            np.minimum(edge, hi[cont] - 1, out=edge)
            if trace_samples is not None:
                # The chosen edge is live even when it lands on an already
                # visited node (the revisit that ends the walk), so capture
                # before the freshness filter.
                trace_samples.append(walk_s)
                trace_edge_ids.append(edge)
            parent = graph.in_idx[edge]
            fresh = ~visited[walk_s, parent]
            walk_s, parent = walk_s[fresh], parent[fresh]
            if walk_s.size == 0:
                break
            visited[walk_s, parent] = True
            member_samples.append(walk_s)
            member_nodes.append(parent)
            active_s, active_v = walk_s, parent

        all_s = np.concatenate(member_samples)
        all_v = np.concatenate(member_nodes)
        visited[all_s, all_v] = False  # reset scratch for the next chunk
        self._commit_chunk(chunk_roots, all_s, all_v, out, trace_samples, trace_edge_ids)

    def _finish_tail(
        self,
        active_s: np.ndarray,
        active_v: np.ndarray,
        visited: np.ndarray,
        source,
        member_samples: list[np.ndarray],
        member_nodes: list[np.ndarray],
        trace_samples: list[np.ndarray] | None = None,
        trace_edge_ids: list[np.ndarray] | None = None,
    ) -> None:
        """Walk the few remaining chains to completion with the scalar hop.

        In-edges come straight off the CSR slice per hop (not the cached
        full adjacency) so shared-graph pool workers stay at the one-copy
        memory footprint.
        """
        random01 = source.py.random
        graph = self.graph
        in_ptr = graph.in_ptr
        in_idx = graph.in_idx
        in_prob = graph.in_prob
        tracing = trace_samples is not None
        extra_s: list[int] = []
        extra_v: list[int] = []
        extra_ts: list[int] = []
        extra_te: list[int] = []
        for sample, current in zip(active_s.tolist(), active_v.tolist()):
            row = visited[sample]
            while True:
                lo, hi = int(in_ptr[current]), int(in_ptr[current + 1])
                index = _pick_in_edge_index(in_prob[lo:hi].tolist(), random01)
                if index is None:
                    break
                if tracing:
                    extra_ts.append(sample)
                    extra_te.append(lo + index)
                parent = int(in_idx[lo + index])
                if row[parent]:
                    break
                row[parent] = True
                extra_s.append(sample)
                extra_v.append(parent)
                current = parent
        if extra_s:
            member_samples.append(np.asarray(extra_s, dtype=np.int64))
            member_nodes.append(np.asarray(extra_v, dtype=np.int64))
        if tracing and extra_ts:
            trace_samples.append(np.asarray(extra_ts, dtype=np.int64))
            trace_edge_ids.append(np.asarray(extra_te, dtype=np.int64))

    def _commit_chunk(
        self, chunk_roots: np.ndarray, all_s: np.ndarray, all_v: np.ndarray,
        out: FlatRRCollection,
        trace_samples: list[np.ndarray] | None = None,
        trace_edge_ids: list[np.ndarray] | None = None,
    ) -> None:
        batch = int(chunk_roots.size)
        sizes = np.bincount(all_s, minlength=batch)
        local_ptr = np.zeros(batch + 1, dtype=np.int64)
        np.cumsum(sizes, out=local_ptr[1:])
        order = np.argsort(all_s, kind="stable")  # root first, then hop order
        widths = np.bincount(
            all_s, weights=self._np_in_deg[all_v], minlength=batch
        ).astype(np.int64)
        trace_ptr = trace_edges = None
        if trace_samples is not None:
            if trace_samples:
                t_s = np.concatenate(trace_samples)
                t_e = np.concatenate(trace_edge_ids)
            else:
                t_s = np.empty(0, dtype=np.int64)
                t_e = np.empty(0, dtype=np.int64)
            t_order = np.argsort(t_s, kind="stable")
            t_sizes = np.bincount(t_s, minlength=batch)
            trace_ptr = np.zeros(batch + 1, dtype=np.int64)
            np.cumsum(t_sizes, out=trace_ptr[1:])
            trace_edges = t_e[t_order].astype(np.int32, copy=False)
        # The scalar walk draws exactly |R| times (one per member, the last
        # draw being the one that stops it), so cost = |R| + draws = 2|R|.
        out.extend_arrays(
            roots=chunk_roots,
            ptr=local_ptr,
            nodes=all_v[order].astype(np.int32, copy=False),
            widths=widths,
            costs=2 * sizes,
            trace_ptr=trace_ptr,
            trace_edges=trace_edges,
        )
