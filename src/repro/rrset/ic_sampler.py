"""RR-set sampling under the independent cascade model (Section 3.1).

The sampler is the paper's randomized reverse BFS: starting at the root, for
each in-edge of a dequeued node flip a coin with the edge's probability and
enqueue the (unvisited) source on success.

Fast path (DESIGN.md §4): when *all* in-edges of a node share one
probability ``p`` — always true under the weighted-cascade convention,
where ``p = 1/indeg`` — the number of successful flips among ``d`` edges is
``Binomial(d, p)`` and the successful subset is uniform given its size.
Drawing the count then ``random.sample``-ing the subset is distributionally
identical to ``d`` per-edge flips but substantially faster for large ``d``.
The ``use_fast_path`` flag exists so the ablation bench (and sceptical
tests) can compare both implementations.
"""

from __future__ import annotations

from repro.graphs.digraph import DiGraph
from repro.rrset.base import RRSampler, RRSet
from repro.utils.rng import RandomSource

__all__ = ["ICRRSampler"]


class ICRRSampler(RRSampler):
    """Randomized reverse BFS generating IC RR sets."""

    model_name = "IC"

    #: Minimum in-degree for the Binomial fast path.  One numpy scalar
    #: binomial draw costs about as much as ~30 plain ``random()`` calls, so
    #: below this the per-edge loop is faster (measured in bench_ablation).
    DEFAULT_FAST_PATH_MIN_DEGREE = 32

    def __init__(
        self,
        graph: DiGraph,
        use_fast_path: bool = True,
        fast_path_min_degree: int | None = None,
        max_depth: int | None = None,
    ):
        super().__init__(graph)
        self._in_adj, self._in_probs = graph.in_adjacency()
        self.use_fast_path = use_fast_path
        if fast_path_min_degree is None:
            fast_path_min_degree = self.DEFAULT_FAST_PATH_MIN_DEGREE
        self.fast_path_min_degree = fast_path_min_degree
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1; got {max_depth}")
        #: Depth truncation for the time-critical (bounded-horizon) IC model:
        #: a node enters the RR set only via live paths of length <= max_depth.
        self.max_depth = max_depth
        # Per node: the shared in-probability if uniform, else None.
        self._uniform_prob: list[float | None] = []
        for probs in self._in_probs:
            if probs and all(p == probs[0] for p in probs):
                self._uniform_prob.append(probs[0])
            else:
                self._uniform_prob.append(None)

    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        random01 = rng.py.random
        sample_distinct = rng.py.sample
        binomial = rng.np.binomial
        in_adj = self._in_adj
        in_probs = self._in_probs
        uniform_prob = self._uniform_prob
        use_fast_path = self.use_fast_path
        min_degree = self.fast_path_min_degree

        if self.max_depth is not None:
            return self._sample_rooted_bounded(root, rng)

        visited = {root}
        # A LIFO frontier is fine: traversal order does not change the set of
        # nodes whose coins succeed, only the order coins are consumed.
        frontier = [root]
        width = 0
        while frontier:
            current = frontier.pop()
            neighbors = in_adj[current]
            degree = len(neighbors)
            width += degree
            if degree == 0:
                continue
            shared = uniform_prob[current]
            if use_fast_path and shared is not None and degree >= min_degree:
                successes = int(binomial(degree, shared))
                if successes == 0:
                    continue
                chosen = sample_distinct(neighbors, successes)
                for source_node in chosen:
                    if source_node not in visited:
                        visited.add(source_node)
                        frontier.append(source_node)
            else:
                probs = in_probs[current]
                for index in range(degree):
                    if random01() < probs[index]:
                        source_node = neighbors[index]
                        if source_node not in visited:
                            visited.add(source_node)
                            frontier.append(source_node)
        # Every in-edge of every visited node was (conceptually) examined, so
        # the generation cost is |R| nodes + w(R) edges.
        return RRSet(root=root, nodes=tuple(visited), width=width, cost=len(visited) + width)

    def _sample_rooted_bounded(self, root: int, rng: RandomSource) -> RRSet:
        """Depth-truncated variant for bounded-horizon IC.

        Must be FIFO: with a stack, a node could be first touched via a
        *long* live path, get marked visited, and wrongly lose the expansion
        budget its shortest live path would have granted.  FIFO dequeues in
        nondecreasing live distance, so each node's recorded depth is its
        true live distance to the root and membership is exactly "live path
        of length <= max_depth".
        """
        from collections import deque

        random01 = rng.py.random
        in_adj = self._in_adj
        in_probs = self._in_probs
        max_depth = self.max_depth

        visited = {root}
        queue = deque([(root, 0)])
        width = 0
        while queue:
            current, depth = queue.popleft()
            if depth >= max_depth:
                continue
            neighbors = in_adj[current]
            probs = in_probs[current]
            width += len(neighbors)
            for index in range(len(neighbors)):
                if random01() < probs[index]:
                    source_node = neighbors[index]
                    if source_node not in visited:
                        visited.add(source_node)
                        queue.append((source_node, depth + 1))
        return RRSet(root=root, nodes=tuple(visited), width=width, cost=len(visited) + width)
