"""RR-set sampling under the independent cascade model (Section 3.1).

The scalar sampler is the paper's randomized reverse BFS: starting at the
root, for each in-edge of a dequeued node flip a coin with the edge's
probability and enqueue the (unvisited) source on success.

Fast path (DESIGN.md §4): when *all* in-edges of a node share one
probability ``p`` — always true under the weighted-cascade convention,
where ``p = 1/indeg`` — the number of successful flips among ``d`` edges is
``Binomial(d, p)`` and the successful subset is uniform given its size.
Drawing the count then ``random.sample``-ing the subset is distributionally
identical to ``d`` per-edge flips but substantially faster for large ``d``.
The ``use_fast_path`` flag exists so the ablation bench (and sceptical
tests) can compare both implementations.

Vectorised path (:meth:`ICRRSampler.sample_batch`): many RR sets are grown
*simultaneously* as one level-synchronous reverse BFS over ``(sample,
node)`` pairs.  Each wave gathers the in-edges of the whole frontier
straight from ``DiGraph.in_ptr``/``in_idx``/``in_prob`` with a CSR
range-gather, decides every coin in one ``rng.np.random(len(slice))`` call,
and deduplicates newly reached pairs against a per-chunk visited matrix.
Frontier nodes whose in-edges share one probability (the weighted-cascade
common case) are additionally eligible for *geometric-skip* sampling: gaps
between Bernoulli successes are Geometric(p), so for a run of ``T`` edges at
probability ``p`` only ``≈ T·p`` geometric draws are needed instead of ``T``
uniforms — same distribution, far fewer random numbers.  The whole batch is
returned as a :class:`~repro.rrset.flat_collection.FlatRRCollection`, so no
per-set Python objects are created on the hot path.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.obs import runtime as obs
from repro.obs.registry import SIZE_BUCKETS
from repro.rrset.base import RRSampler, RRSet
from repro.rrset.flat_collection import FlatRRCollection
from repro.utils.rng import RandomSource, resolve_rng

__all__ = ["ICRRSampler"]


def _geometric_positions(npgen, p: float, total: int) -> np.ndarray:
    """Positions of successes in ``total`` iid Bernoulli(p) trials.

    Exact skip sampling: gaps between successive successes (and before the
    first) are iid Geometric(p), so drawing gaps and cumulative-summing them
    visits only the ≈ ``total·p`` successes instead of all ``total`` trials.
    Draws in slabs sized to overshoot the end with high probability; loops
    when a slab falls short.
    """
    if total <= 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    chunks: list[np.ndarray] = []
    last = -1  # position of the most recent success
    while True:
        remaining = total - (last + 1)
        if remaining <= 0:
            break
        expected = remaining * p
        slab = int(expected + 6.0 * math.sqrt(expected + 1.0) + 16.0)
        gaps = npgen.geometric(p, size=slab)
        positions = last + np.cumsum(gaps)
        cut = int(np.searchsorted(positions, total))
        chunks.append(positions[:cut])
        if cut < positions.size:
            break  # the slab crossed the end of the trial run: done
        last = int(positions[-1])
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


class ICRRSampler(RRSampler):
    """Randomized reverse BFS generating IC RR sets."""

    model_name = "IC"

    #: Minimum in-degree for the Binomial fast path.  One numpy scalar
    #: binomial draw costs about as much as ~30 plain ``random()`` calls, so
    #: below this the per-edge loop is faster (measured in bench_ablation).
    DEFAULT_FAST_PATH_MIN_DEGREE = 32

    #: Minimum concatenated edge count of a same-probability frontier group
    #: before geometric-skip sampling replaces per-edge uniform draws.  One
    #: batched uniform draw costs ~1 ns/edge, so the grouping argsort plus
    #: per-group python overhead only pays off for long same-p runs
    #: (high-degree hubs or very homogeneous frontiers).
    GEOMETRIC_SKIP_MIN_EDGES = 4096

    #: Upper bounds on the visited-bitmap row pool: at most this many
    #: boolean cells (rows · n, i.e. at most 16 MiB of scratch) and at most
    #: this many concurrent samples.  Measured sweet spot: much smaller and
    #: the waves lose their numpy amortisation, much bigger and the
    #: scattered bitmap accesses fall out of last-level cache.
    BATCH_CHUNK_CELLS = 16 << 20
    BATCH_CHUNK_MAX = 8192

    #: When the live frontier shrinks below this many (sample, node) pairs,
    #: the chunk's stragglers are finished by the scalar BFS: numpy call
    #: overhead dominates vectorised waves this small, and deep RR sets
    #: (long weighted-cascade chains) would otherwise pay it per level.
    TAIL_CUTOVER_PAIRS = 64

    def __init__(
        self,
        graph: DiGraph,
        use_fast_path: bool = True,
        fast_path_min_degree: int | None = None,
        max_depth: int | None = None,
        use_geometric_skip: bool = True,
        trace_edges: bool = False,
    ):
        super().__init__(graph)
        #: Record the in-CSR ids of every successful coin on each sample
        #: (the live-edge trace incremental repair depends on).  Tracing
        #: never touches the RNG stream: every code path below derives the
        #: edge id from state it already computes, so a traced run samples
        #: the exact same sets as an untraced one.
        self.trace_edges = bool(trace_edges)
        self.use_fast_path = use_fast_path
        if fast_path_min_degree is None:
            fast_path_min_degree = self.DEFAULT_FAST_PATH_MIN_DEGREE
        self.fast_path_min_degree = fast_path_min_degree
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1; got {max_depth}")
        #: Depth truncation for the time-critical (bounded-horizon) IC model:
        #: a node enters the RR set only via live paths of length <= max_depth.
        self.max_depth = max_depth
        #: Allow geometric-skip draws for uniform-probability frontier groups
        #: in the vectorised path (off = pure per-edge batched coin flips).
        self.use_geometric_skip = use_geometric_skip
        #: Per node: the shared in-probability if uniform, NaN otherwise
        #: (computed straight off the CSR arrays — no Python materialisation,
        #: so pool workers sampling over a shared graph stay at the one-copy
        #: memory footprint).
        self._np_unif_p = self._uniform_in_probs()
        finite = self._np_unif_p[np.isfinite(self._np_unif_p)]
        #: Few distinct uniform probabilities (e.g. a constant-p graph) ⇒
        #: frontier groups are large and geometric skip pays; many distinct
        #: values (weighted cascade on a degree-diverse graph) ⇒ groups are
        #: shards and only high-degree hubs are worth it.
        self._distinct_uniform_probs = int(np.unique(finite).size)
        in_deg = graph.in_degrees()
        self._max_in_degree = int(in_deg.max()) if in_deg.size else 0
        # Lazy caches: Python adjacency lists (scalar sample_rooted path
        # only), the shared-p list mirror, and the vector-path degree array.
        self._adj: tuple[list[list[int]], list[list[float]]] | None = None
        self._uniform_list: list[float | None] | None = None
        self._np_in_deg: np.ndarray | None = None

    def _uniform_in_probs(self) -> np.ndarray:
        """Per-node shared in-probability (NaN when mixed or in-degree 0)."""
        graph = self.graph
        out = np.full(graph.n, np.nan, dtype=np.float64)
        if graph.m == 0:
            return out
        in_deg = graph.in_degrees()
        node_of_edge = np.repeat(np.arange(graph.n, dtype=np.int64), in_deg)
        first_prob = graph.in_prob[graph.in_ptr[node_of_edge]]
        mixed = np.zeros(graph.n, dtype=bool)
        mixed[node_of_edge[graph.in_prob != first_prob]] = True
        uniform = (in_deg > 0) & ~mixed
        out[uniform] = graph.in_prob[graph.in_ptr[:-1][uniform]]
        return out

    def _adjacency(self) -> tuple[list[list[int]], list[list[float]]]:
        """Python adjacency lists for the scalar loops (built on demand)."""
        if self._adj is None:
            self._adj = self.graph.in_adjacency()
        return self._adj

    def _uniform_prob_list(self) -> list[float | None]:
        if self._uniform_list is None:
            self._uniform_list = [
                None if math.isnan(p) else p for p in self._np_unif_p.tolist()
            ]
        return self._uniform_list

    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        random01 = rng.py.random
        sample_distinct = rng.py.sample
        binomial = rng.np.binomial
        in_adj, in_probs = self._adjacency()
        uniform_prob = self._uniform_prob_list()
        use_fast_path = self.use_fast_path
        min_degree = self.fast_path_min_degree

        if self.max_depth is not None:
            return self._sample_rooted_bounded(root, rng)

        in_ptr = self.graph.in_ptr
        trace: list[int] | None = [] if self.trace_edges else None

        visited = {root}
        # A LIFO frontier is fine: traversal order does not change the set of
        # nodes whose coins succeed, only the order coins are consumed.
        frontier = [root]
        width = 0
        while frontier:
            current = frontier.pop()
            neighbors = in_adj[current]
            degree = len(neighbors)
            width += degree
            if degree == 0:
                continue
            edge_base = int(in_ptr[current])
            shared = uniform_prob[current]
            if use_fast_path and shared is not None and degree >= min_degree:
                successes = int(binomial(degree, shared))
                if successes == 0:
                    continue
                # Sampling *positions* instead of neighbour values consumes
                # the RNG identically (random.sample depends only on the
                # population length), while also yielding the edge ids.
                chosen = sample_distinct(range(degree), successes)
                if trace is not None:
                    trace.extend(edge_base + index for index in chosen)
                for index in chosen:
                    source_node = neighbors[index]
                    if source_node not in visited:
                        visited.add(source_node)
                        frontier.append(source_node)
            else:
                probs = in_probs[current]
                for index in range(degree):
                    if random01() < probs[index]:
                        if trace is not None:
                            trace.append(edge_base + index)
                        source_node = neighbors[index]
                        if source_node not in visited:
                            visited.add(source_node)
                            frontier.append(source_node)
        # Every in-edge of every visited node was (conceptually) examined, so
        # the generation cost is |R| nodes + w(R) edges.
        return RRSet(
            root=root,
            nodes=tuple(visited),
            width=width,
            cost=len(visited) + width,
            trace=None if trace is None else tuple(trace),
        )

    def _sample_rooted_bounded(self, root: int, rng: RandomSource) -> RRSet:
        """Depth-truncated variant for bounded-horizon IC.

        Must be FIFO: with a stack, a node could be first touched via a
        *long* live path, get marked visited, and wrongly lose the expansion
        budget its shortest live path would have granted.  FIFO dequeues in
        nondecreasing live distance, so each node's recorded depth is its
        true live distance to the root and membership is exactly "live path
        of length <= max_depth".
        """
        from collections import deque

        random01 = rng.py.random
        in_adj, in_probs = self._adjacency()
        in_ptr = self.graph.in_ptr
        max_depth = self.max_depth
        trace: list[int] | None = [] if self.trace_edges else None

        visited = {root}
        queue = deque([(root, 0)])
        width = 0
        while queue:
            current, depth = queue.popleft()
            if depth >= max_depth:
                continue
            neighbors = in_adj[current]
            probs = in_probs[current]
            edge_base = int(in_ptr[current])
            width += len(neighbors)
            for index in range(len(neighbors)):
                if random01() < probs[index]:
                    if trace is not None:
                        trace.append(edge_base + index)
                    source_node = neighbors[index]
                    if source_node not in visited:
                        visited.add(source_node)
                        queue.append((source_node, depth + 1))
        return RRSet(
            root=root,
            nodes=tuple(visited),
            width=width,
            cost=len(visited) + width,
            trace=None if trace is None else tuple(trace),
        )

    # ------------------------------------------------------------------
    # Vectorised batch path
    # ------------------------------------------------------------------
    def _ensure_vector_state(self) -> None:
        if self._np_in_deg is None:
            self._np_in_deg = self.graph.in_degrees()

    def sample_batch(self, roots, rng) -> FlatRRCollection:
        """Generate one IC RR set per root with numpy-batched expansion.

        Matches :meth:`sample_rooted` in distribution — including
        ``max_depth`` truncation — but not coin-for-coin (different RNG
        consumption order).  Two internal drivers share the wave-expansion
        core:

        * unbounded sampling uses a *streaming* reverse BFS: a pool of
          visited-bitmap rows grows many RR sets concurrently and admits the
          next root the moment a row frees up, so the frontier stays wide
          and numpy call overhead is amortised across the whole batch;
        * ``max_depth`` sampling processes fixed chunks level-synchronously
          (every wave is one BFS depth), which realises the scalar FIFO
          truncation semantics exactly.
        """
        source = resolve_rng(rng)
        self._ensure_vector_state()
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        n = self.graph.n
        out = FlatRRCollection(n, self.graph.m, track_traces=self.trace_edges)
        if roots.size == 0:
            return out
        rows = max(1, min(self.BATCH_CHUNK_MAX, self.BATCH_CHUNK_CELLS // max(n, 1)))
        rows = min(rows, int(roots.size))
        visited = np.zeros((rows, n), dtype=bool)
        with obs.trace("sampling.ic_batch", sets=int(roots.size)):
            if self.max_depth is None:
                self._sample_stream(roots, source, out, visited)
            else:
                for start in range(0, roots.size, rows):
                    self._expand_chunk(roots[start : start + rows], source, out, visited)
        if obs.enabled():
            obs.add("rr.sets", int(roots.size))
            obs.add("rr.cost", int(out.costs_array.sum()))
            obs.observe_many("rr.width", out.widths_array, bounds=SIZE_BUCKETS)
        return out

    def _sample_stream(
        self,
        roots: np.ndarray,
        source: RandomSource,
        out: FlatRRCollection,
        visited: np.ndarray,
    ) -> None:
        """Streaming driver: grow all RR sets through one shared frontier.

        Each in-flight sample owns one row of ``visited``; finished rows are
        wiped (one contiguous memset) and recycled to admit the next root,
        so the wave width stays near the pool size instead of decaying into
        long tails of tiny frontiers.
        """
        n = self.graph.n
        num_rows = visited.shape[0]
        total = int(roots.size)
        id_dtype = np.int32 if num_rows * n < 2**31 else np.int64
        sample_of_row = np.empty(num_rows, dtype=np.int64)
        free_rows: list[int] = list(range(num_rows - 1, -1, -1))
        member_samples: list[np.ndarray] = []
        member_nodes: list[np.ndarray] = []
        trace_samples: list[np.ndarray] | None = [] if self.trace_edges else None
        trace_edge_ids: list[np.ndarray] | None = [] if self.trace_edges else None
        next_root = 0
        active_s = np.empty(0, dtype=np.int64)
        active_v = np.empty(0, dtype=np.int64)
        active_r = np.empty(0, dtype=id_dtype)
        row_live = np.zeros(num_rows, dtype=bool)
        visited_flat = visited.reshape(-1)

        while True:
            if next_root < total and free_rows:
                take = min(len(free_rows), total - next_root)
                new_r = np.array(free_rows[-take:][::-1], dtype=id_dtype)
                del free_rows[-take:]
                new_s = np.arange(next_root, next_root + take, dtype=np.int64)
                new_v = roots[next_root : next_root + take]
                next_root += take
                sample_of_row[new_r] = new_s
                row_live[new_r] = True
                visited[new_r, new_v] = True
                member_samples.append(new_s)
                member_nodes.append(new_v)
                active_s = np.concatenate([active_s, new_s])
                active_v = np.concatenate([active_v, new_v])
                active_r = np.concatenate([active_r, new_r])
            if active_v.size == 0:
                break
            if active_v.size <= self.TAIL_CUTOVER_PAIRS and next_root >= total:
                self._finish_tail(
                    active_s, active_r, active_v, 0, visited, None, source,
                    member_samples, member_nodes, trace_samples, trace_edge_ids,
                )
                break
            hit_pos, hit_v, hit_e = self._expand_wave(active_v, source)
            if trace_samples is not None and hit_pos.size:
                # Traces record every successful coin — captured before the
                # visited filter and the within-wave dedup, because a success
                # into an already-reached member is still a live edge.
                trace_samples.append(sample_of_row[active_r[hit_pos]])
                trace_edge_ids.append(hit_e)
            key = np.empty(0, dtype=id_dtype)
            if hit_pos.size:
                # One flat (row·n + node) key drives everything: the visited
                # lookup, the within-wave dedup (in-place sort + adjacent
                # diff beats a hash-based unique here), and the bitmap write.
                key = active_r[hit_pos] * id_dtype(n) + hit_v.astype(id_dtype, copy=False)
                key = key[~visited_flat[key]]
            if key.size:
                key.sort()
                if key.size > 1:
                    keep = np.empty(key.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(key[1:], key[:-1], out=keep[1:])
                    key = key[keep]
                visited_flat[key] = True
                cand_r = key // id_dtype(n)
                cand_v = (key % id_dtype(n)).astype(np.int64, copy=False)
                cand_s = sample_of_row[cand_r]
                member_samples.append(cand_s)
                member_nodes.append(cand_v)
            else:
                cand_s = np.empty(0, dtype=np.int64)
                cand_v = np.empty(0, dtype=np.int64)
                cand_r = np.empty(0, dtype=id_dtype)
            # Rows whose frontier died this wave are wiped and recycled.
            # Bitmap bookkeeping is O(rows + frontier), no sorting.
            still_live = np.zeros(num_rows, dtype=bool)
            still_live[cand_r] = True
            finished = np.flatnonzero(row_live & ~still_live)
            if finished.size:
                visited[finished] = False
                free_rows.extend(finished.tolist())
            row_live = still_live
            active_s, active_v, active_r = cand_s, cand_v, cand_r

        self._commit(roots, member_samples, member_nodes, None, out,
                     trace_samples, trace_edge_ids)

    def _expand_chunk(
        self,
        chunk_roots: np.ndarray,
        source: RandomSource,
        out: FlatRRCollection,
        visited: np.ndarray,
    ) -> None:
        """Level-synchronous driver for ``max_depth``-truncated sampling.

        Wave ``d`` expands exactly the nodes at live distance ``d``, so a
        member's recorded depth is its true live distance and truncation is
        exact (the vectorised analogue of :meth:`_sample_rooted_bounded`).
        ``visited`` is an all-False scratch matrix with at least
        ``len(chunk_roots)`` rows; touched cells are cleared before return.
        """
        n = self.graph.n
        in_deg = self._np_in_deg
        batch = chunk_roots.size
        id_dtype = np.int32 if batch * n < 2**31 else np.int64
        sample_ids = np.arange(batch, dtype=np.int64)
        visited[sample_ids, chunk_roots] = True
        member_samples = [sample_ids]
        member_nodes = [chunk_roots]
        trace_samples: list[np.ndarray] | None = [] if self.trace_edges else None
        trace_edge_ids: list[np.ndarray] | None = [] if self.trace_edges else None
        # Depth-truncated width needs the running per-wave total: members
        # sitting exactly at the horizon contribute no examined edges.
        widths = np.zeros(batch, dtype=np.int64)

        active_s, active_v = sample_ids, chunk_roots
        depth = 0
        while active_v.size:
            if depth >= self.max_depth:
                break
            if active_v.size <= self.TAIL_CUTOVER_PAIRS:
                self._finish_tail(
                    active_s, active_s, active_v, depth, visited, widths, source,
                    member_samples, member_nodes, trace_samples, trace_edge_ids,
                )
                break
            # w(R) counts every in-edge of every expanded member (Equation 1).
            widths += np.bincount(
                active_s, weights=in_deg[active_v], minlength=batch
            ).astype(np.int64)
            hit_pos, hit_v, hit_e = self._expand_wave(active_v, source)
            if hit_pos.size == 0:
                break
            if trace_samples is not None:
                trace_samples.append(active_s[hit_pos])
                trace_edge_ids.append(hit_e)
            hit_s = active_s[hit_pos]
            fresh = ~visited[hit_s, hit_v]
            hit_s, hit_v = hit_s[fresh], hit_v[fresh]
            if hit_s.size == 0:
                break
            key = np.unique(
                hit_s.astype(id_dtype, copy=False) * id_dtype(n)
                + hit_v.astype(id_dtype, copy=False)
            )
            cand_s = (key // id_dtype(n)).astype(np.int64, copy=False)
            cand_v = (key % id_dtype(n)).astype(np.int64, copy=False)
            visited[cand_s, cand_v] = True
            member_samples.append(cand_s)
            member_nodes.append(cand_v)
            active_s, active_v = cand_s, cand_v
            depth += 1

        all_s = np.concatenate(member_samples)
        all_v = np.concatenate(member_nodes)
        visited[all_s, all_v] = False  # reset scratch for the next chunk
        self._commit(chunk_roots, [all_s], [all_v], widths, out,
                     trace_samples, trace_edge_ids)

    def _commit(
        self,
        roots: np.ndarray,
        member_samples: list[np.ndarray],
        member_nodes: list[np.ndarray],
        widths: np.ndarray | None,
        out: FlatRRCollection,
        trace_samples: list[np.ndarray] | None = None,
        trace_edge_ids: list[np.ndarray] | None = None,
    ) -> None:
        """Sort membership by sample and bulk-append the batch to ``out``."""
        batch = int(roots.size)
        all_s = member_samples[0] if len(member_samples) == 1 else np.concatenate(member_samples)
        all_v = member_nodes[0] if len(member_nodes) == 1 else np.concatenate(member_nodes)
        if widths is None:
            # Unbounded: w(R) = Σ in-degree over the final membership.
            widths = np.bincount(
                all_s, weights=self._np_in_deg[all_v], minlength=batch
            ).astype(np.int64)
        order = np.argsort(all_s, kind="stable")
        sizes = np.bincount(all_s, minlength=batch)
        local_ptr = np.zeros(batch + 1, dtype=np.int64)
        np.cumsum(sizes, out=local_ptr[1:])
        trace_ptr = trace_edges = None
        if trace_samples is not None:
            if trace_samples:
                t_s = np.concatenate(trace_samples)
                t_e = np.concatenate(trace_edge_ids)
            else:
                t_s = np.empty(0, dtype=np.int64)
                t_e = np.empty(0, dtype=np.int64)
            t_order = np.argsort(t_s, kind="stable")
            t_sizes = np.bincount(t_s, minlength=batch)
            trace_ptr = np.zeros(batch + 1, dtype=np.int64)
            np.cumsum(t_sizes, out=trace_ptr[1:])
            trace_edges = t_e[t_order].astype(np.int32, copy=False)
        out.extend_arrays(
            roots=roots,
            ptr=local_ptr,
            nodes=all_v[order].astype(np.int32, copy=False),
            widths=widths,
            costs=sizes + widths,
            trace_ptr=trace_ptr,
            trace_edges=trace_edges,
        )

    def _finish_tail(
        self,
        active_s: np.ndarray,
        active_r: np.ndarray,
        active_v: np.ndarray,
        depth: int,
        visited: np.ndarray,
        widths: np.ndarray | None,
        source: RandomSource,
        member_samples: list[np.ndarray],
        member_nodes: list[np.ndarray],
        trace_samples: list[np.ndarray] | None = None,
        trace_edge_ids: list[np.ndarray] | None = None,
    ) -> None:
        """Finish the few remaining frontiers with the scalar BFS.

        Numpy call overhead dominates waves this small, and deep RR sets
        (long weighted-cascade chains) would otherwise pay it per level.
        Shares the driver's visited matrix (``active_r`` names each pair's
        row); each expanded node's in-edges come straight off the CSR slice
        (one ``tolist`` per node — deliberately *not* the full cached
        adjacency, so pool workers never materialise the whole graph as
        Python lists).  Coin order differs from the wave path but the
        sampled distribution is identical.  FIFO with explicit depths keeps
        ``max_depth`` truncation exact (see :meth:`_sample_rooted_bounded`).
        ``widths`` is only accumulated for the bounded driver; the streaming
        driver derives widths from the final membership instead.
        """
        from collections import deque

        random01 = source.py.random
        graph = self.graph
        in_ptr = graph.in_ptr
        in_idx = graph.in_idx
        in_prob = graph.in_prob
        max_depth = self.max_depth
        extra_s: list[int] = []
        extra_v: list[int] = []
        tracing = trace_samples is not None
        extra_ts: list[int] = []
        extra_te: list[int] = []
        queue = deque(
            (int(s), int(r), int(v), depth)
            for s, r, v in zip(active_s.tolist(), active_r.tolist(), active_v.tolist())
        )
        while queue:
            sample, row_id, current, level = queue.popleft()
            if max_depth is not None and level >= max_depth:
                continue
            lo, hi = int(in_ptr[current]), int(in_ptr[current + 1])
            neighbors = in_idx[lo:hi].tolist()
            probs = in_prob[lo:hi].tolist()
            if widths is not None:
                widths[sample] += len(neighbors)
            row = visited[row_id]
            for index in range(len(neighbors)):
                if random01() < probs[index]:
                    if tracing:
                        extra_ts.append(sample)
                        extra_te.append(lo + index)
                    source_node = neighbors[index]
                    if not row[source_node]:
                        row[source_node] = True
                        extra_s.append(sample)
                        extra_v.append(source_node)
                        queue.append((sample, row_id, source_node, level + 1))
        if extra_s:
            member_samples.append(np.asarray(extra_s, dtype=np.int64))
            member_nodes.append(np.asarray(extra_v, dtype=np.int64))
        if tracing and extra_ts:
            trace_samples.append(np.asarray(extra_ts, dtype=np.int64))
            trace_edge_ids.append(np.asarray(extra_te, dtype=np.int64))

    def _expand_wave(
        self, active_v: np.ndarray, source: RandomSource
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """One frontier wave: flip every in-edge coin of ``active_v`` at once.

        Returns ``(positions, source_nodes, edge_ids)`` of the successful
        flips — ``positions`` index into ``active_v`` so callers can recover
        the owning sample/row — undeduplicated.  ``edge_ids`` are the
        successful coins' in-CSR positions when ``trace_edges`` is on
        (``None`` otherwise; both sub-paths already compute them, so tracing
        costs one extra gather and no extra randomness).  Uniform-probability
        frontier groups with enough edges go through geometric-skip sampling;
        the rest use one batched uniform draw over the concatenated CSR edge
        slices.
        """
        deg = self._np_in_deg[active_v]
        positions = np.flatnonzero(deg > 0)
        if positions.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, (empty if self.trace_edges else None)
        if positions.size < active_v.size:
            active_v, deg = active_v[positions], deg[positions]

        skip_mask = np.zeros(active_v.size, dtype=bool)
        # Grouping by probability costs an argsort per wave; only attempt it
        # when the wave is big enough AND same-p runs can plausibly clear the
        # per-group threshold: either the graph has few distinct uniform
        # probabilities (groups span most of the wave) or it has genuine
        # high-degree hubs (a single node is a long run by itself).
        if (
            self.use_geometric_skip
            and self.use_fast_path
            and int(deg.sum()) >= self.GEOMETRIC_SKIP_MIN_EDGES
            and (
                self._distinct_uniform_probs <= 8
                or self._max_in_degree >= self.GEOMETRIC_SKIP_MIN_EDGES // 4
            )
        ):
            skip_mask = np.isfinite(self._np_unif_p[active_v])
        out_pos: list[np.ndarray] = []
        out_v: list[np.ndarray] = []
        out_e: list[np.ndarray] | None = [] if self.trace_edges else None
        if skip_mask.any():
            chosen = np.flatnonzero(skip_mask)
            demoted = self._expand_uniform_groups(
                positions[chosen], active_v[chosen], deg[chosen], source,
                out_pos, out_v, out_e,
            )
            if demoted is not None:
                # Groups too small for skip sampling rejoin the flip path.
                skip_mask[chosen[demoted]] = False
        flip_mask = ~skip_mask
        if flip_mask.any():
            self._expand_per_edge(
                positions[flip_mask], active_v[flip_mask], deg[flip_mask],
                source, out_pos, out_v, out_e,
            )
        if not out_pos:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, (empty if self.trace_edges else None)
        return (
            np.concatenate(out_pos),
            np.concatenate(out_v),
            np.concatenate(out_e) if out_e is not None else None,
        )

    def _expand_per_edge(self, positions, frontier_v, deg, source, out_pos, out_v,
                         out_e=None) -> None:
        """Batched per-edge coin flips over the frontier's CSR edge slices."""
        graph = self.graph
        total = int(deg.sum())
        if total == 0:
            return
        ends = np.cumsum(deg)
        # Concatenated CSR ranges via the diff/cumsum trick: step 1 within a
        # node's slice, jump to the next node's start at each boundary.
        starts = graph.in_ptr[frontier_v]
        edge_idx = np.ones(total, dtype=np.int64)
        edge_idx[0] = starts[0]
        if ends.size > 1:
            edge_idx[ends[:-1]] = starts[1:] - starts[:-1] - deg[:-1] + 1
        np.cumsum(edge_idx, out=edge_idx)
        success_at = np.flatnonzero(source.np.random(total) < graph.in_prob[edge_idx])
        if success_at.size == 0:
            return
        # Map successful edge positions back to their frontier entry.
        success_edges = edge_idx[success_at]
        out_pos.append(positions[np.searchsorted(ends, success_at, side="right")])
        out_v.append(graph.in_idx[success_edges])
        if out_e is not None:
            out_e.append(success_edges)

    def _expand_uniform_groups(
        self, positions, frontier_v, deg, source, out_pos, out_v, out_e=None
    ) -> np.ndarray | None:
        """Geometric-skip expansion for uniform-probability frontier nodes.

        Nodes are grouped by their shared in-probability ``p``; within a
        group the concatenated edge stream is a run of iid Bernoulli(p)
        trials, so success positions are recovered from Geometric(p) gaps.
        Returns indices (into the given frontier) of nodes whose group was
        too small to benefit, or ``None`` when every group qualified.
        """
        graph = self.graph
        probs = self._np_unif_p[frontier_v]
        order = np.argsort(probs, kind="stable")
        probs_sorted = probs[order]
        group_starts = np.flatnonzero(np.r_[True, np.diff(probs_sorted) != 0])
        group_ends = np.r_[group_starts[1:], probs_sorted.size]
        demoted: list[np.ndarray] = []
        for lo, hi in zip(group_starts, group_ends):
            members = order[lo:hi]
            group_deg = deg[members]
            total = int(group_deg.sum())
            p = float(probs_sorted[lo])
            if total < self.GEOMETRIC_SKIP_MIN_EDGES:
                demoted.append(members)
                continue
            success_at = _geometric_positions(source.np, p, total)
            if success_at.size == 0:
                continue
            cum = np.cumsum(group_deg)
            segment = np.searchsorted(cum, success_at, side="right")
            local = success_at - (cum[segment] - group_deg[segment])
            nodes = frontier_v[members]
            success_edges = graph.in_ptr[nodes][segment] + local
            out_pos.append(positions[members][segment])
            out_v.append(graph.in_idx[success_edges])
            if out_e is not None:
                out_e.append(success_edges)
        if not demoted:
            return None
        return np.concatenate(demoted)
