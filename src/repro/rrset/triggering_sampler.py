"""RR-set sampling under an arbitrary triggering distribution (Section 4.2).

The paper's generalised construction: put the root's sampled triggering set
in a queue; for every dequeued node, sample *its* triggering set and enqueue
unvisited members; the RR set is everything visited.  IC and LT are special
cases, and the dedicated samplers agree in distribution with this one
(property-tested), but those exploit structure for speed.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.digraph import DiGraph
from repro.rrset.base import RRSampler, RRSet
from repro.diffusion.triggering import TriggeringDistribution
from repro.utils.rng import RandomSource

__all__ = ["TriggeringRRSampler"]


class TriggeringRRSampler(RRSampler):
    """Generic reverse traversal driven by a triggering distribution."""

    model_name = "triggering"

    def __init__(self, graph: DiGraph, distribution: TriggeringDistribution):
        super().__init__(graph)
        if distribution.graph is not graph:
            raise ValueError("distribution is bound to a different graph instance")
        distribution.validate()
        self.distribution = distribution

    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        distribution = self.distribution
        visited = {root}
        queue = deque([root])
        examined = 0
        while queue:
            current = queue.popleft()
            triggering_set = distribution.sample(current, rng)
            examined += len(triggering_set)
            for source_node in triggering_set:
                if source_node not in visited:
                    visited.add(source_node)
                    queue.append(source_node)
        width = self.width_of(visited)
        return RRSet(root=root, nodes=tuple(visited), width=width, cost=len(visited) + examined)
