"""Greedy maximum coverage over RR sets (Algorithm 1, lines 3–7).

Given sampled RR sets, pick ``k`` nodes covering as many sets as possible.
The standard greedy gives the ``(1 - 1/e)`` guarantee [29]; two
implementations are provided:

* :func:`greedy_max_coverage` — the *linear-time exact* greedy the paper
  cites: maintain per-node cover counts and an inverted index; when a node
  is chosen, walk its still-uncovered sets once and decrement the counts of
  their members.  Total work is O(Σ|R|) plus a k·n argmax scan.
* :func:`lazy_greedy_max_coverage` — CELF-style lazy heap over the same
  counts.  Identical output distribution (coverage gain is submodular);
  kept for the ablation bench.

Ties break toward the smaller node id so selections are deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.utils.validation import require

__all__ = [
    "CoverageResult",
    "greedy_max_coverage",
    "lazy_greedy_max_coverage",
    "brute_force_max_coverage",
    "coverage_of",
]


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of a maximum-coverage run."""

    seeds: list[int]
    covered: int
    num_sets: int
    #: Sets still uncovered after each pick (length k); used by diagnostics.
    marginal_gains: tuple[int, ...]

    @property
    def fraction(self) -> float:
        """``F_R(S)`` of the selected seeds."""
        return self.covered / self.num_sets if self.num_sets else 0.0


def coverage_of(rr_sets: Sequence[tuple[int, ...]], nodes) -> int:
    """Number of ``rr_sets`` intersecting ``nodes`` (reference counter)."""
    chosen = set(int(v) for v in nodes)
    return sum(1 for rr in rr_sets if any(v in chosen for v in rr))


def greedy_max_coverage(
    rr_sets: Sequence[tuple[int, ...]], num_nodes: int, k: int
) -> CoverageResult:
    """Exact greedy: k rounds of true argmax over live cover counts."""
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    counts = [0] * num_nodes
    node_to_sets: list[list[int]] = [[] for _ in range(num_nodes)]
    for set_index, rr in enumerate(rr_sets):
        for node in rr:
            counts[node] += 1
            node_to_sets[node].append(set_index)

    covered = [False] * len(rr_sets)
    seeds: list[int] = []
    chosen: set[int] = set()
    total_covered = 0
    gains: list[int] = []
    for _ in range(k):
        best_node = -1
        best_count = -1
        for node in range(num_nodes):
            if node not in chosen and counts[node] > best_count:
                best_node = node
                best_count = counts[node]
        seeds.append(best_node)
        chosen.add(best_node)
        gains.append(best_count)
        total_covered += best_count
        for set_index in node_to_sets[best_node]:
            if covered[set_index]:
                continue
            covered[set_index] = True
            for member in rr_sets[set_index]:
                counts[member] -= 1
    return CoverageResult(seeds, total_covered, len(rr_sets), tuple(gains))


def lazy_greedy_max_coverage(
    rr_sets: Sequence[tuple[int, ...]], num_nodes: int, k: int
) -> CoverageResult:
    """Lazy-heap greedy; same guarantees, different constant factors.

    Heap entries are ``(-count, node)``; a popped entry whose count is stale
    is re-pushed with the current count.  Because counts only decrease, a
    fresh popped entry is a true argmax.  Note the exact variant breaks ties
    by node id while the heap breaks ties by (count, node id) — both are
    valid greedy executions but may pick different tied nodes.
    """
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    counts = [0] * num_nodes
    node_to_sets: list[list[int]] = [[] for _ in range(num_nodes)]
    for set_index, rr in enumerate(rr_sets):
        for node in rr:
            counts[node] += 1
            node_to_sets[node].append(set_index)

    heap = [(-counts[node], node) for node in range(num_nodes)]
    heapq.heapify(heap)
    covered = [False] * len(rr_sets)
    seeds: list[int] = []
    chosen: set[int] = set()
    total_covered = 0
    gains: list[int] = []
    while len(seeds) < k and heap:
        negative_count, node = heapq.heappop(heap)
        if node in chosen:
            continue
        if -negative_count != counts[node]:
            heapq.heappush(heap, (-counts[node], node))
            continue
        seeds.append(node)
        chosen.add(node)
        gains.append(counts[node])
        total_covered += counts[node]
        for set_index in node_to_sets[node]:
            if covered[set_index]:
                continue
            covered[set_index] = True
            for member in rr_sets[set_index]:
                counts[member] -= 1
    while len(seeds) < k:  # fewer live nodes than k (degenerate inputs)
        for node in range(num_nodes):
            if node not in chosen:
                seeds.append(node)
                chosen.add(node)
                gains.append(0)
                break
    return CoverageResult(seeds, total_covered, len(rr_sets), tuple(gains))


def brute_force_max_coverage(
    rr_sets: Sequence[tuple[int, ...]], num_nodes: int, k: int
) -> CoverageResult:
    """Optimal coverage by exhaustive search — test oracle only.

    Cost is ``C(num_nodes, k)`` coverage evaluations; callers keep inputs
    tiny.  Ties resolve to the lexicographically smallest seed tuple.
    """
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    best_seeds: tuple[int, ...] = tuple(range(k))
    best_covered = -1
    for candidate in combinations(range(num_nodes), k):
        covered = coverage_of(rr_sets, candidate)
        if covered > best_covered:
            best_covered = covered
            best_seeds = candidate
    return CoverageResult(list(best_seeds), best_covered, len(rr_sets), ())
