"""Greedy maximum coverage over RR sets (Algorithm 1, lines 3–7).

Given sampled RR sets, pick ``k`` nodes covering as many sets as possible.
The standard greedy gives the ``(1 - 1/e)`` guarantee [29]; the solvers here
all run on the *flat* CSR layout (``ptr``/``nodes`` arrays, see
:mod:`repro.rrset.flat_collection`): per-node cover counts live in one int64
array, the node → set membership map is a CSR inverted index, and each round
is an ``argmax`` plus a vectorised count-decrement instead of the former
``O(k·n)`` Python scans.

* :func:`greedy_max_coverage` — the *linear-time exact* greedy the paper
  cites: ``k`` rounds of true argmax over live cover counts.
* :func:`lazy_greedy_max_coverage` — CELF-style lazy heap over the same
  counts; identical seeds (including on ties — both orders resolve a tied
  maximum toward the smaller node id), different constant factors.
* :func:`greedy_max_coverage_python` — the original pure-Python exact
  greedy, kept as the ``engine="python"`` ablation baseline and test oracle.

All solvers accept either a sequence of node tuples (the classic
:class:`~repro.rrset.collection.RRCollection` storage) or a
:class:`~repro.rrset.flat_collection.FlatRRCollection`; tuple input is
flattened once up front.

Ties break toward the smaller node id so selections are deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.utils.validation import require

__all__ = [
    "CoverageResult",
    "greedy_max_coverage",
    "lazy_greedy_max_coverage",
    "greedy_max_coverage_python",
    "brute_force_max_coverage",
    "coverage_of",
]


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of a maximum-coverage run."""

    seeds: list[int]
    covered: int
    num_sets: int
    #: Sets still uncovered after each pick (length k); used by diagnostics.
    marginal_gains: tuple[int, ...]

    @property
    def fraction(self) -> float:
        """``F_R(S)`` of the selected seeds."""
        return self.covered / self.num_sets if self.num_sets else 0.0


def coverage_of(rr_sets: Sequence[tuple[int, ...]], nodes) -> int:
    """Number of ``rr_sets`` intersecting ``nodes`` (reference counter)."""
    chosen = set(int(v) for v in nodes)
    return sum(1 for rr in rr_sets if any(v in chosen for v in rr))


# ----------------------------------------------------------------------
# Flat representation plumbing
# ----------------------------------------------------------------------
def _as_flat_arrays(rr_sets) -> tuple[np.ndarray, np.ndarray]:
    """``(ptr, nodes)`` int arrays for either storage format."""
    # Duck-typed so FlatRRCollection needn't be imported (avoids a cycle).
    ptr = getattr(rr_sets, "ptr_array", None)
    if ptr is not None:
        return np.asarray(ptr, dtype=np.int64), np.asarray(rr_sets.nodes_array, dtype=np.int64)
    num_sets = len(rr_sets)
    sizes = np.fromiter((len(rr) for rr in rr_sets), dtype=np.int64, count=num_sets)
    ptr = np.zeros(num_sets + 1, dtype=np.int64)
    np.cumsum(sizes, out=ptr[1:])
    total = int(ptr[-1])
    nodes = np.fromiter(
        (int(v) for rr in rr_sets for v in rr), dtype=np.int64, count=total
    )
    return ptr, nodes


def _gather_members(ptr: np.ndarray, nodes: np.ndarray, set_ids: np.ndarray) -> np.ndarray:
    """Concatenated members of the given sets (CSR range-gather trick)."""
    counts = ptr[set_ids + 1] - ptr[set_ids]
    total = int(counts.sum())
    if total == 0:
        return nodes[:0]
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return nodes[np.repeat(ptr[set_ids], counts) + offsets]


def _decrement(counts: np.ndarray, members: np.ndarray, num_nodes: int) -> None:
    """``counts[v] -= multiplicity of v in members`` without a Python loop."""
    # bincount beats subtract.at once the member batch is non-trivial.
    if members.size > 64:
        counts -= np.bincount(members, minlength=num_nodes)
    else:
        np.subtract.at(counts, members, 1)


def _inverted_index(
    ptr: np.ndarray, nodes: np.ndarray, num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR map node → ids of the sets containing it."""
    num_sets = ptr.size - 1
    set_of_entry = np.repeat(np.arange(num_sets, dtype=np.int64), np.diff(ptr))
    order = np.argsort(nodes, kind="stable")
    inv_sets = set_of_entry[order]
    inv_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(nodes, minlength=num_nodes), out=inv_ptr[1:])
    return inv_ptr, inv_sets


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def greedy_max_coverage(rr_sets, num_nodes: int, k: int) -> CoverageResult:
    """Exact greedy: k rounds of true argmax over live cover counts.

    ``rr_sets`` may be a sequence of node tuples or a
    :class:`~repro.rrset.flat_collection.FlatRRCollection`.  ``np.argmax``
    resolves ties toward the smaller node id, matching the historical
    pure-Python scan exactly.
    """
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    ptr, nodes = _as_flat_arrays(rr_sets)
    num_sets = ptr.size - 1
    counts = np.bincount(nodes, minlength=num_nodes).astype(np.int64)
    inv_ptr, inv_sets = _inverted_index(ptr, nodes, num_nodes)

    covered = np.zeros(num_sets, dtype=bool)
    seeds: list[int] = []
    gains: list[int] = []
    total_covered = 0
    for _ in range(k):
        best = int(np.argmax(counts))
        gain = int(counts[best])
        seeds.append(best)
        gains.append(gain)
        total_covered += gain
        candidate_sets = inv_sets[inv_ptr[best] : inv_ptr[best + 1]]
        new_sets = candidate_sets[~covered[candidate_sets]]
        if new_sets.size:
            covered[new_sets] = True
            _decrement(counts, _gather_members(ptr, nodes, new_sets), num_nodes)
        counts[best] = -1  # exclude from future argmax rounds
    return CoverageResult(seeds, total_covered, num_sets, tuple(gains))


def lazy_greedy_max_coverage(rr_sets, num_nodes: int, k: int) -> CoverageResult:
    """Lazy-heap greedy; identical seeds to the exact variant, lazier scans.

    Heap entries are ``(-count, node)``; a popped entry whose count is stale
    is re-pushed with the current count.  Because counts only decrease, a
    fresh popped entry is a true argmax, and the ``(-count, node)`` order
    resolves a tied maximum toward the smaller node id — the same
    tie-breaking rule as :func:`greedy_max_coverage`'s argmax, so the two
    produce identical seed lists even on ties.
    """
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    ptr, nodes = _as_flat_arrays(rr_sets)
    num_sets = ptr.size - 1
    counts = np.bincount(nodes, minlength=num_nodes).astype(np.int64)
    inv_ptr, inv_sets = _inverted_index(ptr, nodes, num_nodes)

    heap = [(-int(counts[node]), node) for node in range(num_nodes)]
    heapq.heapify(heap)
    covered = np.zeros(num_sets, dtype=bool)
    seeds: list[int] = []
    chosen = np.zeros(num_nodes, dtype=bool)
    gains: list[int] = []
    total_covered = 0
    while len(seeds) < k and heap:
        negative_count, node = heapq.heappop(heap)
        if chosen[node]:
            continue
        current = int(counts[node])
        if -negative_count != current:
            heapq.heappush(heap, (-current, node))
            continue
        seeds.append(node)
        chosen[node] = True
        gains.append(current)
        total_covered += current
        candidate_sets = inv_sets[inv_ptr[node] : inv_ptr[node + 1]]
        new_sets = candidate_sets[~covered[candidate_sets]]
        if new_sets.size:
            covered[new_sets] = True
            _decrement(counts, _gather_members(ptr, nodes, new_sets), num_nodes)
    if len(seeds) < k:
        # Degenerate inputs (heap exhausted early): one vectorised pass picks
        # the smallest-id unchosen nodes, replacing the old O(n·k) refill loop.
        fill = np.flatnonzero(~chosen)[: k - len(seeds)]
        seeds.extend(int(v) for v in fill)
        gains.extend(0 for _ in range(len(fill)))
    return CoverageResult(seeds, total_covered, num_sets, tuple(gains))


def greedy_max_coverage_python(
    rr_sets: Sequence[tuple[int, ...]], num_nodes: int, k: int
) -> CoverageResult:
    """The original pure-Python exact greedy (``engine="python"`` baseline).

    Semantically identical to :func:`greedy_max_coverage`; kept so the
    ablation bench can price the numpy rewrite and tests can cross-check the
    vectorised solver against an independent implementation.
    """
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    counts = [0] * num_nodes
    node_to_sets: list[list[int]] = [[] for _ in range(num_nodes)]
    for set_index, rr in enumerate(rr_sets):
        for node in rr:
            counts[node] += 1
            node_to_sets[node].append(set_index)

    covered = [False] * len(rr_sets)
    seeds: list[int] = []
    chosen: set[int] = set()
    total_covered = 0
    gains: list[int] = []
    for _ in range(k):
        best_node = -1
        best_count = -1
        for node in range(num_nodes):
            if node not in chosen and counts[node] > best_count:
                best_node = node
                best_count = counts[node]
        seeds.append(best_node)
        chosen.add(best_node)
        gains.append(best_count)
        total_covered += best_count
        for set_index in node_to_sets[best_node]:
            if covered[set_index]:
                continue
            covered[set_index] = True
            for member in rr_sets[set_index]:
                counts[member] -= 1
    return CoverageResult(seeds, total_covered, len(rr_sets), tuple(gains))


def brute_force_max_coverage(
    rr_sets: Sequence[tuple[int, ...]], num_nodes: int, k: int
) -> CoverageResult:
    """Optimal coverage by exhaustive search — test oracle only.

    Cost is ``C(num_nodes, k)`` coverage evaluations; callers keep inputs
    tiny.  Ties resolve to the lexicographically smallest seed tuple.
    """
    require(k >= 1, "k must be >= 1")
    require(num_nodes >= k, "k cannot exceed the number of nodes")
    best_seeds: tuple[int, ...] = tuple(range(k))
    best_covered = -1
    for candidate in combinations(range(num_nodes), k):
        covered = coverage_of(rr_sets, candidate)
        if covered > best_covered:
            best_covered = covered
            best_seeds = candidate
    return CoverageResult(list(best_seeds), best_covered, len(rr_sets), ())
