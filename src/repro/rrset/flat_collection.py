"""Flat (CSR-native) storage for sampled RR sets.

:class:`FlatRRCollection` is the numpy counterpart of
:class:`repro.rrset.collection.RRCollection`: instead of one Python tuple per
RR set, the whole collection lives in two packed integer arrays,

* ``ptr``   — ``int64`` of length ``num_sets + 1``; set ``i`` occupies
  ``nodes[ptr[i]:ptr[i + 1]]`` (exactly the CSR layout the graph uses for
  adjacency),
* ``nodes`` — ``int32`` member node ids, concatenated in append order,

plus parallel ``widths`` / ``roots`` / ``costs`` arrays.  Every estimator the
algorithms read off ``R`` (``F_R(S)``, ``κ(R)`` averages, per-node
frequencies) becomes a handful of vectorised numpy calls:

* ``node_frequencies`` is one :func:`numpy.bincount` over ``nodes``,
* ``mean_kappa`` evaluates Equation 8 on the whole ``widths`` array at once,
* ``coverage_count`` is a boolean gather followed by a segmented any.

The arrays grow by amortised doubling so ``append``/``extend_flat`` stay
O(1) per stored node, and :meth:`nbytes` reports *exact* array payloads —
the honest number behind the Figure 12 memory reproduction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.rrset.base import RRSet
from repro.utils.validation import require

__all__ = ["FlatRRCollection"]

_NODE_DTYPE = np.int32
_PTR_DTYPE = np.int64
#: Edge-trace entries are positions into the graph's in-CSR arrays; int32
#: caps the graph at 2^31 edges, the same universe the int32 ``nodes``
#: payload already implies for node ids.
_TRACE_DTYPE = np.int32


def _grow(array: np.ndarray, needed: int) -> np.ndarray:
    """Return ``array`` with capacity >= ``needed`` (amortised doubling)."""
    capacity = array.size
    if capacity >= needed:
        return array
    new_capacity = max(needed, 2 * capacity, 16)
    grown = np.empty(new_capacity, dtype=array.dtype)
    grown[:capacity] = array
    return grown


class FlatRRCollection:
    """An append-only bag of RR sets stored as packed numpy arrays.

    Mirrors the :class:`~repro.rrset.collection.RRCollection` API (``len``,
    ``sets``, ``widths``, ``roots``, ``total_cost``, coverage estimators) so
    the two are drop-in interchangeable; the flat layout additionally exposes
    the raw ``ptr``/``nodes`` arrays that the vectorised samplers and the
    numpy max-coverage solver operate on directly.
    """

    __slots__ = (
        "num_nodes",
        "graph_edges",
        "_num_sets",
        "_num_entries",
        "_ptr",
        "_nodes",
        "_widths",
        "_roots",
        "_costs",
        "_total_cost",
        "_track_traces",
        "_trace_ptr",
        "_trace_edges",
        "_num_trace_entries",
    )

    def __init__(self, num_nodes: int, graph_edges: int, track_traces: bool = False):
        require(num_nodes > 0, "num_nodes must be positive")
        self.num_nodes = int(num_nodes)
        self.graph_edges = int(graph_edges)
        self._num_sets = 0
        self._num_entries = 0
        self._ptr = np.zeros(16, dtype=_PTR_DTYPE)
        self._nodes = np.empty(64, dtype=_NODE_DTYPE)
        self._widths = np.empty(16, dtype=np.int64)
        self._roots = np.empty(16, dtype=_NODE_DTYPE)
        self._costs = np.empty(16, dtype=np.int64)
        self._total_cost = 0
        # Edge traces (the live in-CSR edge ids each set's generation
        # examined successfully) are the substrate of incremental repair
        # (repro.dynamic); tracking is all-or-nothing per collection so a
        # repair can trust every stored set to carry its trace.
        self._track_traces = bool(track_traces)
        self._num_trace_entries = 0
        if self._track_traces:
            self._trace_ptr = np.zeros(16, dtype=_PTR_DTYPE)
            self._trace_edges = np.empty(64, dtype=_TRACE_DTYPE)
        else:
            self._trace_ptr = None
            self._trace_edges = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rrsets(
        cls, num_nodes: int, graph_edges: int, rr_sets: Iterable[RRSet],
        track_traces: bool = False,
    ) -> "FlatRRCollection":
        """Build a flat collection from materialised :class:`RRSet` objects."""
        collection = cls(num_nodes, graph_edges, track_traces=track_traces)
        collection.extend(rr_sets)
        return collection

    @classmethod
    def from_arrays(
        cls,
        num_nodes: int,
        graph_edges: int,
        ptr: np.ndarray,
        nodes: np.ndarray,
        roots: np.ndarray,
        widths: np.ndarray,
        costs: np.ndarray,
        trace_ptr: np.ndarray | None = None,
        trace_edges: np.ndarray | None = None,
    ) -> "FlatRRCollection":
        """Adopt already-packed arrays as a collection *without copying*.

        This is the deserialisation entry point used by
        :mod:`repro.sketch.persistence`: the given arrays become the live
        storage directly, so memory-mapped (read-only) arrays are accepted —
        the first ``append``/``extend`` grows into fresh writable buffers
        before any in-place write happens, because loaded arrays carry no
        spare capacity.
        """
        # asanyarray keeps np.memmap views intact (mmap-loaded sketches).
        ptr = np.asanyarray(ptr)
        nodes = np.asanyarray(nodes)
        roots = np.asanyarray(roots)
        widths = np.asanyarray(widths)
        costs = np.asanyarray(costs)
        num_sets = int(roots.size)
        require(ptr.ndim == 1 and ptr.size == num_sets + 1, "ptr/roots length mismatch")
        require(widths.size == num_sets, "widths length mismatch")
        require(costs.size == num_sets, "costs length mismatch")
        require(int(ptr[0]) == 0, "ptr must start at 0")
        require(int(ptr[-1]) == int(nodes.size), "ptr does not span the nodes array")
        require(bool(np.all(np.diff(ptr) >= 0)), "ptr must be non-decreasing")
        if nodes.size:
            lo, hi = int(nodes.min()), int(nodes.max())
            require(0 <= lo and hi < num_nodes, "node id out of range for num_nodes")
        require((trace_ptr is None) == (trace_edges is None),
                "trace_ptr and trace_edges must be given together")
        collection = cls(num_nodes, graph_edges, track_traces=trace_ptr is not None)
        collection._ptr = ptr
        collection._nodes = nodes
        collection._widths = widths
        collection._roots = roots
        collection._costs = costs
        collection._num_sets = num_sets
        collection._num_entries = int(nodes.size)
        collection._total_cost = int(costs.sum()) if num_sets else 0
        if trace_ptr is not None:
            trace_ptr = np.asanyarray(trace_ptr)
            trace_edges = np.asanyarray(trace_edges)
            require(trace_ptr.ndim == 1 and trace_ptr.size == num_sets + 1,
                    "trace_ptr/roots length mismatch")
            require(int(trace_ptr[0]) == 0, "trace_ptr must start at 0")
            require(int(trace_ptr[-1]) == int(trace_edges.size),
                    "trace_ptr does not span the trace_edges array")
            require(bool(np.all(np.diff(trace_ptr) >= 0)),
                    "trace_ptr must be non-decreasing")
            if trace_edges.size:
                lo, hi = int(trace_edges.min()), int(trace_edges.max())
                require(0 <= lo and hi < graph_edges,
                        "trace edge id out of range for graph_edges")
            collection._trace_ptr = trace_ptr
            collection._trace_edges = trace_edges
            collection._num_trace_entries = int(trace_edges.size)
        return collection

    def append(self, rr: RRSet) -> None:
        """Add one sampled RR set (compatibility with :class:`RRCollection`)."""
        trace = None
        if self._track_traces:
            require(rr.trace is not None,
                    "this collection tracks edge traces; the RR set carries none "
                    "(sample with trace_edges=True)")
            trace = np.asarray(rr.trace, dtype=_TRACE_DTYPE)
        self.append_arrays(
            root=rr.root,
            members=np.asarray(rr.nodes, dtype=_NODE_DTYPE),
            width=rr.width,
            cost=rr.cost,
            trace=trace,
        )

    def extend(self, rr_sets: Iterable[RRSet]) -> None:
        """Add many sampled RR sets."""
        for rr in rr_sets:
            self.append(rr)

    def append_arrays(self, root: int, members: np.ndarray, width: int, cost: int,
                      trace: np.ndarray | None = None) -> None:
        """Add one RR set given its member array directly (no tuple detour)."""
        count = int(members.size)
        trace_count = self._check_trace(trace, int(trace.size) if trace is not None else 0)
        self._reserve(self._num_sets + 1, self._num_entries + count,
                      self._num_trace_entries + trace_count)
        self._nodes[self._num_entries : self._num_entries + count] = members
        index = self._num_sets
        self._widths[index] = width
        self._roots[index] = root
        self._costs[index] = cost
        self._total_cost += int(cost)
        self._num_entries += count
        self._num_sets += 1
        self._ptr[self._num_sets] = self._num_entries
        if self._track_traces:
            if trace_count:
                self._trace_edges[
                    self._num_trace_entries : self._num_trace_entries + trace_count
                ] = trace
            self._num_trace_entries += trace_count
            self._trace_ptr[self._num_sets] = self._num_trace_entries

    def _check_trace(self, trace, extra_entries: int) -> int:
        """Enforce the all-or-nothing trace contract; returns entry count."""
        if self._track_traces:
            require(trace is not None,
                    "this collection tracks edge traces; appended sets must "
                    "carry trace arrays")
        else:
            require(trace is None,
                    "this collection does not track edge traces; rebuild it "
                    "with track_traces=True to store them")
        return extra_entries if self._track_traces else 0

    def extend_flat(self, other: "FlatRRCollection") -> None:
        """Append every RR set of another flat collection (array-level copy)."""
        require(
            other.num_nodes == self.num_nodes,
            "cannot merge collections over different node universes",
        )
        self.extend_arrays(
            roots=other.roots_array,
            ptr=other.ptr_array,
            nodes=other.nodes_array,
            widths=other.widths_array,
            costs=other.costs_array,
            trace_ptr=other.trace_ptr_array if self._track_traces else None,
            trace_edges=other.trace_edges_array if self._track_traces else None,
        )

    def extend_arrays(
        self,
        roots: np.ndarray,
        ptr: np.ndarray,
        nodes: np.ndarray,
        widths: np.ndarray,
        costs: np.ndarray,
        trace_ptr: np.ndarray | None = None,
        trace_edges: np.ndarray | None = None,
    ) -> None:
        """Bulk-append a whole batch of RR sets given in flat form.

        ``ptr`` is a local offset array of length ``len(roots) + 1`` indexing
        into ``nodes``; this is the entry point the vectorised samplers use to
        commit one expansion chunk with a handful of array copies.
        ``trace_ptr``/``trace_edges`` carry the batch's edge traces in the
        same local-offset form and are mandatory iff the collection tracks
        traces.
        """
        extra_sets = int(roots.size)
        extra_entries = int(nodes.size)
        require(ptr.size == extra_sets + 1, "ptr/roots length mismatch")
        require((trace_ptr is None) == (trace_edges is None),
                "trace_ptr and trace_edges must be given together")
        if extra_sets == 0:
            return
        extra_trace = self._check_trace(
            trace_ptr, int(trace_edges.size) if trace_edges is not None else 0
        )
        if self._track_traces:
            require(trace_ptr.size == extra_sets + 1, "trace_ptr/roots length mismatch")
        self._reserve(self._num_sets + extra_sets, self._num_entries + extra_entries,
                      self._num_trace_entries + extra_trace)
        self._nodes[self._num_entries : self._num_entries + extra_entries] = nodes
        self._ptr[self._num_sets + 1 : self._num_sets + 1 + extra_sets] = (
            np.asarray(ptr[1:], dtype=_PTR_DTYPE) + self._num_entries
        )
        self._widths[self._num_sets : self._num_sets + extra_sets] = widths
        self._roots[self._num_sets : self._num_sets + extra_sets] = roots
        self._costs[self._num_sets : self._num_sets + extra_sets] = costs
        self._total_cost += int(np.asarray(costs).sum()) if extra_sets else 0
        if self._track_traces:
            if extra_trace:
                self._trace_edges[
                    self._num_trace_entries : self._num_trace_entries + extra_trace
                ] = trace_edges
            self._trace_ptr[self._num_sets + 1 : self._num_sets + 1 + extra_sets] = (
                np.asarray(trace_ptr[1:], dtype=_PTR_DTYPE) + self._num_trace_entries
            )
            self._num_trace_entries += extra_trace
        self._num_sets += extra_sets
        self._num_entries += extra_entries

    def truncate(self, num_sets: int) -> None:
        """Drop every RR set after the first ``num_sets`` (RIS budget trim)."""
        require(0 <= num_sets <= self._num_sets, "truncate target out of range")
        self._num_sets = num_sets
        self._num_entries = int(self._ptr[num_sets])
        self._total_cost = int(self._costs[:num_sets].sum()) if num_sets else 0
        if self._track_traces:
            self._num_trace_entries = int(self._trace_ptr[num_sets])

    def _reserve(self, num_sets: int, num_entries: int, num_trace_entries: int = 0) -> None:
        self._ptr = _grow(self._ptr, num_sets + 1)
        self._nodes = _grow(self._nodes, num_entries)
        self._widths = _grow(self._widths, num_sets)
        self._roots = _grow(self._roots, num_sets)
        self._costs = _grow(self._costs, num_sets)
        if self._track_traces:
            self._trace_ptr = _grow(self._trace_ptr, num_sets + 1)
            self._trace_edges = _grow(self._trace_edges, num_trace_entries)

    # ------------------------------------------------------------------
    # Array views (the vectorised hot-path surface)
    # ------------------------------------------------------------------
    @property
    def ptr_array(self) -> np.ndarray:
        """``int64`` offsets; set ``i`` is ``nodes_array[ptr[i]:ptr[i+1]]``."""
        return self._ptr[: self._num_sets + 1]

    @property
    def nodes_array(self) -> np.ndarray:
        """Packed member node ids (``int32``)."""
        return self._nodes[: self._num_entries]

    @property
    def widths_array(self) -> np.ndarray:
        """Per-set widths ``w(R)`` as ``int64``."""
        return self._widths[: self._num_sets]

    @property
    def roots_array(self) -> np.ndarray:
        """Per-set root nodes as ``int32``."""
        return self._roots[: self._num_sets]

    @property
    def costs_array(self) -> np.ndarray:
        """Per-set generation costs (nodes + edges examined)."""
        return self._costs[: self._num_sets]

    def set_sizes(self) -> np.ndarray:
        """``|R|`` per stored set."""
        return np.diff(self.ptr_array)

    # ------------------------------------------------------------------
    # Edge traces (incremental-repair substrate)
    # ------------------------------------------------------------------
    @property
    def has_traces(self) -> bool:
        """Whether every stored set carries its live-edge trace."""
        return self._track_traces

    @property
    def trace_ptr_array(self) -> np.ndarray | None:
        """``int64`` offsets; set ``i``'s trace is
        ``trace_edges_array[trace_ptr[i]:trace_ptr[i+1]]`` (``None`` when
        the collection does not track traces)."""
        if not self._track_traces:
            return None
        return self._trace_ptr[: self._num_sets + 1]

    @property
    def trace_edges_array(self) -> np.ndarray | None:
        """Packed live in-CSR edge ids, concatenated in set order.

        For IC these are the edges whose coin succeeded during generation
        (including successes into already-visited members); for LT, the
        single chosen in-edge of each visited node.  They address positions
        in the *sampled graph's* ``in_idx``/``in_prob`` arrays, so a graph
        mutation must remap them (:meth:`repro.graphs.delta.GraphDelta
        .remap_edge_ids`) before they are reused.
        """
        if not self._track_traces:
            return None
        return self._trace_edges[: self._num_trace_entries]

    def trace_of(self, index: int) -> np.ndarray:
        """The live-edge trace of set ``index`` (view into the packed array)."""
        require(self._track_traces, "this collection does not track edge traces")
        require(0 <= index < self._num_sets, "set index out of range")
        return self._trace_edges[self._trace_ptr[index] : self._trace_ptr[index + 1]]

    # ------------------------------------------------------------------
    # RRCollection-compatible accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_sets

    @property
    def sets(self) -> Sequence[tuple[int, ...]]:
        """Stored sets as Python tuples (materialised; compatibility path)."""
        nodes = self.nodes_array.tolist()
        ptr = self.ptr_array.tolist()
        return [tuple(nodes[ptr[i] : ptr[i + 1]]) for i in range(self._num_sets)]

    @property
    def widths(self) -> Sequence[int]:
        """Per-set widths ``w(R)``."""
        return self.widths_array.tolist()

    @property
    def roots(self) -> Sequence[int]:
        """Per-set root nodes."""
        return self.roots_array.tolist()

    @property
    def costs(self) -> Sequence[int]:
        """Per-set generation costs (parity with :class:`RRCollection`)."""
        return self.costs_array.tolist()

    @property
    def total_cost(self) -> int:
        """Σ per-set generation cost (nodes + edges examined) — RIS's τ meter.

        Maintained incrementally: RIS polls this once per batch, so an O(1)
        counter (like :class:`RRCollection`'s) beats re-summing the array.
        """
        return self._total_cost

    @property
    def total_nodes_stored(self) -> int:
        """Σ |R| over the collection."""
        return self._num_entries

    def to_rrsets(self) -> list[RRSet]:
        """Materialise :class:`RRSet` objects (compatibility/debugging path)."""
        nodes = self.nodes_array.tolist()
        ptr = self.ptr_array.tolist()
        widths = self.widths_array.tolist()
        roots = self.roots_array.tolist()
        costs = self.costs_array.tolist()
        traces = tptr = None
        if self._track_traces:
            traces = self.trace_edges_array.tolist()
            tptr = self.trace_ptr_array.tolist()
        return [
            RRSet(
                root=roots[i],
                nodes=tuple(nodes[ptr[i] : ptr[i + 1]]),
                width=widths[i],
                cost=costs[i],
                trace=tuple(traces[tptr[i] : tptr[i + 1]]) if traces is not None else None,
            )
            for i in range(self._num_sets)
        ]

    def __iter__(self) -> Iterator[RRSet]:
        return iter(self.to_rrsets())

    def nbytes(self) -> int:
        """Exact bytes of the *live* array payloads.

        Counts ``num_sets + 1`` ptr slots and ``total_nodes_stored`` node
        slots (not the amortised over-allocation), so the number tracks the
        λ/KPT⁺-driven growth of Section 7.4 precisely.
        """
        itemsize_nodes = self._nodes.itemsize
        itemsize_ptr = self._ptr.itemsize
        total = (
            (self._num_sets + 1) * itemsize_ptr
            + self._num_entries * itemsize_nodes
            + self._num_sets * (self._widths.itemsize + self._roots.itemsize + self._costs.itemsize)
        )
        if self._track_traces:
            total += (self._num_sets + 1) * self._trace_ptr.itemsize
            total += self._num_trace_entries * self._trace_edges.itemsize
        return total

    # ------------------------------------------------------------------
    # Estimators (vectorised)
    # ------------------------------------------------------------------
    def coverage_count(self, nodes) -> int:
        """Number of stored RR sets intersecting ``nodes``."""
        if self._num_sets == 0:
            return 0
        mask = np.zeros(self.num_nodes, dtype=bool)
        mask[np.asarray(list(nodes), dtype=np.int64)] = True
        hits = mask[self.nodes_array]
        if not hits.any():
            return 0
        set_ids = np.repeat(np.arange(self._num_sets), self.set_sizes())
        return int(np.count_nonzero(np.bincount(set_ids[hits], minlength=self._num_sets)))

    def coverage_fraction(self, nodes) -> float:
        """``F_R(S)``: fraction of RR sets covered by ``S``."""
        if self._num_sets == 0:
            return 0.0
        return self.coverage_count(nodes) / self._num_sets

    def estimate_spread(self, nodes) -> float:
        """``n · F_R(S)``, the unbiased spread estimator of Corollary 1."""
        return self.num_nodes * self.coverage_fraction(nodes)

    def mean_width(self) -> float:
        """Average ``w(R)`` — the EPT estimator of Section 3.2."""
        if self._num_sets == 0:
            return 0.0
        return float(self.widths_array.mean())

    def mean_kappa(self, k: int) -> float:
        """Average ``κ(R) = 1 - (1 - w(R)/m)^k`` (Equation 8), vectorised."""
        require(k >= 1, "k must be >= 1")
        if self._num_sets == 0 or self.graph_edges == 0:
            return 0.0
        kappa = 1.0 - (1.0 - self.widths_array / self.graph_edges) ** k
        return float(kappa.mean())

    def kappa_sum(self, k: int) -> float:
        """Σ ``κ(R)`` over the collection (Algorithm 2's running total)."""
        require(k >= 1, "k must be >= 1")
        if self._num_sets == 0 or self.graph_edges == 0:
            return 0.0
        return float((1.0 - (1.0 - self.widths_array / self.graph_edges) ** k).sum())

    def node_frequencies(self) -> list[int]:
        """How many RR sets each node appears in (argmax = best single seed)."""
        return np.bincount(self.nodes_array, minlength=self.num_nodes).tolist()

    def node_frequency_array(self) -> np.ndarray:
        """Vectorised variant of :meth:`node_frequencies` (no list detour)."""
        return np.bincount(self.nodes_array, minlength=self.num_nodes)

    # ------------------------------------------------------------------
    # Persistence (delegates to repro.sketch.persistence)
    # ------------------------------------------------------------------
    def save(self, path, meta: dict | None = None) -> None:
        """Persist the collection as a versioned ``.npz`` sketch file.

        ``meta`` carries sampler provenance (model name, theta, RNG seed,
        graph fingerprint, ...); see :func:`repro.sketch.persistence
        .save_sketch` for the format contract.
        """
        from repro.sketch.persistence import save_sketch

        save_sketch(path, self, meta or {})

    @classmethod
    def load(cls, path, mmap: bool = False) -> "tuple[FlatRRCollection, dict]":
        """Load a persisted sketch; returns ``(collection, metadata)``.

        With ``mmap=True`` the packed arrays are memory-mapped read-only
        (``mmap_mode="r"``) so concurrent service processes share pages.
        """
        from repro.sketch.persistence import load_sketch

        return load_sketch(path, mmap=mmap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatRRCollection(num_sets={self._num_sets}, "
            f"num_nodes={self.num_nodes}, stored_nodes={self._num_entries})"
        )
