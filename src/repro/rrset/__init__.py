"""Reverse-reachable set machinery: samplers, storage, max coverage."""

from repro.rrset.base import RRSampler, RRSet, make_rr_sampler
from repro.rrset.collection import RRCollection
from repro.rrset.coverage import (
    CoverageResult,
    brute_force_max_coverage,
    coverage_of,
    greedy_max_coverage,
    lazy_greedy_max_coverage,
)
from repro.rrset.ic_sampler import ICRRSampler
from repro.rrset.lt_sampler import LTRRSampler
from repro.rrset.triggering_sampler import TriggeringRRSampler

__all__ = [
    "RRSampler",
    "RRSet",
    "make_rr_sampler",
    "RRCollection",
    "CoverageResult",
    "brute_force_max_coverage",
    "coverage_of",
    "greedy_max_coverage",
    "lazy_greedy_max_coverage",
    "ICRRSampler",
    "LTRRSampler",
    "TriggeringRRSampler",
]
