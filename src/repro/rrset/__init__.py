"""Reverse-reachable set machinery: samplers, storage, max coverage.

Two interchangeable storage layouts back the algorithms:

* :class:`RRCollection` — one Python tuple per RR set (the original,
  ``engine="python"`` substrate),
* :class:`FlatRRCollection` — the whole collection packed into CSR-style
  ``ptr``/``nodes`` numpy arrays (the ``engine="vectorized"`` substrate;
  see :mod:`repro.rrset.flat_collection` for the layout).
"""

from repro.rrset.base import RRSampler, RRSet, make_rr_sampler
from repro.rrset.collection import RRCollection
from repro.rrset.coverage import (
    CoverageResult,
    brute_force_max_coverage,
    coverage_of,
    greedy_max_coverage,
    greedy_max_coverage_python,
    lazy_greedy_max_coverage,
)
from repro.rrset.flat_collection import FlatRRCollection
from repro.rrset.ic_sampler import ICRRSampler
from repro.rrset.lt_sampler import LTRRSampler
from repro.rrset.triggering_sampler import TriggeringRRSampler

__all__ = [
    "RRSampler",
    "RRSet",
    "make_rr_sampler",
    "RRCollection",
    "FlatRRCollection",
    "CoverageResult",
    "brute_force_max_coverage",
    "coverage_of",
    "greedy_max_coverage",
    "greedy_max_coverage_python",
    "lazy_greedy_max_coverage",
    "ICRRSampler",
    "LTRRSampler",
    "TriggeringRRSampler",
]
