"""Storage and bookkeeping for sampled RR sets (the paper's ``R``).

Beyond holding the sets, the collection computes the quantities the
algorithms read off ``R``:

* ``F_R(S)`` — the fraction of RR sets covered by a node set ``S``
  (Table 1); ``n · F_R(S)`` estimates ``E[I(S)]`` (Corollary 1),
* ``κ(R)`` averages for Algorithm 2 (Equation 8),
* byte accounting for the Figure 12 memory reproduction.

This is the *tuple-per-set* layout, the ``engine="python"`` substrate.  The
numpy-batched hot paths use its flat sibling,
:class:`repro.rrset.flat_collection.FlatRRCollection`, which stores the
whole collection in packed CSR-style ``ptr``/``nodes`` arrays; the two
expose the same estimator API and are interchangeable downstream.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.rrset.base import RRSet
from repro.utils.memory import deep_size_of_rr_sets
from repro.utils.validation import require

__all__ = ["RRCollection"]


class RRCollection:
    """An append-only bag of RR sets over a graph with ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int, graph_edges: int):
        require(num_nodes > 0, "num_nodes must be positive")
        self.num_nodes = num_nodes
        self.graph_edges = graph_edges
        self._sets: list[tuple[int, ...]] = []
        self._widths: list[int] = []
        self._roots: list[int] = []
        self._costs: list[int] = []
        self._total_cost = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, rr: RRSet) -> None:
        """Add one sampled RR set."""
        self._sets.append(rr.nodes)
        self._widths.append(rr.width)
        self._roots.append(rr.root)
        self._costs.append(rr.cost)
        self._total_cost += rr.cost

    def extend(self, rr_sets: Iterable[RRSet]) -> None:
        """Add many sampled RR sets."""
        for rr in rr_sets:
            self.append(rr)

    # ------------------------------------------------------------------
    # Size / cost accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sets)

    @property
    def sets(self) -> Sequence[tuple[int, ...]]:
        """The stored node tuples (read-only view by convention)."""
        return self._sets

    @property
    def widths(self) -> Sequence[int]:
        """Per-set widths ``w(R)``."""
        return self._widths

    @property
    def roots(self) -> Sequence[int]:
        """Per-set root nodes."""
        return self._roots

    @property
    def costs(self) -> Sequence[int]:
        """Per-set generation costs (nodes + edges examined)."""
        return self._costs

    @property
    def costs_array(self) -> np.ndarray:
        """Per-set generation costs as ``int64`` (parity with the flat layout)."""
        return np.asarray(self._costs, dtype=np.int64)

    def set_sizes(self) -> np.ndarray:
        """``|R|`` per stored set (parity with the flat layout)."""
        return np.fromiter((len(s) for s in self._sets), dtype=np.int64, count=len(self._sets))

    @property
    def total_cost(self) -> int:
        """Σ per-set generation cost (nodes + edges examined) — RIS's τ meter."""
        return self._total_cost

    @property
    def total_nodes_stored(self) -> int:
        """Σ |R| over the collection."""
        return sum(len(s) for s in self._sets)

    def nbytes(self) -> int:
        """Bytes held by the stored node tuples *including* int payloads.

        Counts the outer list, every tuple, and — once per distinct object —
        the integer payloads (CPython interns small ints, so duplicates are
        deduplicated by id).  This is the number the Figure 12 memory
        reproduction tracks as |R| = λ/KPT⁺ grows (Section 7.4); the earlier
        container-only accounting understated it by the whole payload.
        """
        return deep_size_of_rr_sets(self._sets)

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    def coverage_count(self, nodes) -> int:
        """Number of stored RR sets intersecting ``nodes``."""
        node_set = set(int(v) for v in nodes)
        covered = 0
        for rr in self._sets:
            for v in rr:
                if v in node_set:
                    covered += 1
                    break
        return covered

    def coverage_fraction(self, nodes) -> float:
        """``F_R(S)``: fraction of RR sets covered by ``S``."""
        if not self._sets:
            return 0.0
        return self.coverage_count(nodes) / len(self._sets)

    def estimate_spread(self, nodes) -> float:
        """``n · F_R(S)``, the unbiased spread estimator of Corollary 1."""
        return self.num_nodes * self.coverage_fraction(nodes)

    def mean_width(self) -> float:
        """Average ``w(R)`` — the EPT estimator of Section 3.2."""
        if not self._widths:
            return 0.0
        return sum(self._widths) / len(self._widths)

    def mean_kappa(self, k: int) -> float:
        """Average ``κ(R) = 1 - (1 - w(R)/m)^k`` (Equation 8)."""
        if not self._widths:
            require(k >= 1, "k must be >= 1")
            return 0.0
        return self.kappa_sum(k) / len(self._widths)

    def kappa_sum(self, k: int) -> float:
        """Σ ``κ(R)`` over the collection (Algorithm 2's running total).

        Same quantity as :meth:`mean_kappa` times ``len(self)``; exposed
        directly for parity with :class:`~repro.rrset.flat_collection
        .FlatRRCollection`, whose vectorised variant the estimation loop
        consumes.
        """
        require(k >= 1, "k must be >= 1")
        if not self._widths or self.graph_edges == 0:
            return 0.0
        m = self.graph_edges
        return sum(1.0 - (1.0 - width / m) ** k for width in self._widths)

    def node_frequencies(self) -> list[int]:
        """How many RR sets each node appears in (argmax = best single seed)."""
        counts = [0] * self.num_nodes
        for rr in self._sets:
            for v in rr:
                counts[v] += 1
        return counts

    def node_frequency_array(self) -> np.ndarray:
        """Numpy variant of :meth:`node_frequencies` (parity with flat layout)."""
        return np.asarray(self.node_frequencies(), dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RRCollection(num_sets={len(self._sets)}, num_nodes={self.num_nodes})"
