"""Reverse-reachable (RR) set sampling interface.

An RR set for node ``v`` (Definition 1) is the set of nodes that can reach
``v`` in a live-edge graph ``g`` sampled from the model's distribution ``G``;
a *random* RR set additionally draws ``v`` uniformly (Definition 2).

Samplers materialise RR sets without ever building ``g``: they run a
randomized reverse traversal that flips each coin exactly when the
corresponding edge would be examined — the paper's "randomized BFS on G"
(Section 3.1 for IC, Section 4.2 for the triggering generalisation).

Every sample reports two cost figures:

* ``width`` — ``w(R)``, the number of edges of ``G`` pointing into ``R``
  (Equation 1); drives ``κ(R)`` in Algorithm 2 and equals the coin-flip
  count of the IC sampler,
* ``cost`` — nodes plus edges *examined* while generating the set; this is
  the quantity Borgs et al.'s RIS thresholds on (Section 2.3).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, resolve_rng

__all__ = ["RRSet", "RRSampler", "make_rr_sampler"]


@dataclass(frozen=True, slots=True)
class RRSet:
    """One sampled reverse-reachable set.

    ``trace`` is only populated by samplers constructed with
    ``trace_edges=True``: the ids (positions in the graph's in-CSR arrays)
    of the *live* edges the generation examined — every successful coin for
    IC, the single chosen in-edge per visited node for LT.  It is the
    per-set dependency record that lets :mod:`repro.dynamic` invalidate
    precisely the sets an edge update could have changed.
    """

    root: int
    nodes: tuple[int, ...]
    width: int
    cost: int
    trace: tuple[int, ...] | None = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: int) -> bool:
        return node in self.nodes

    def __iter__(self):
        return iter(self.nodes)


class RRSampler(ABC):
    """Model-specific random RR-set generator bound to one graph."""

    #: Display name of the diffusion model the sampler targets.
    model_name: str = "abstract"

    #: Whether samples record live-edge traces (overridden per instance by
    #: samplers that support the ``trace_edges`` constructor flag).
    trace_edges: bool = False

    #: Sampler classes that already warned about lacking a vectorized batch
    #: path (one warning per class per process, not one per call).
    _batch_fallback_warned: set[str] = set()

    def __init__(self, graph: DiGraph):
        self.graph = graph
        # Lazy: only the scalar width_of path reads the Python list; pool
        # workers driving the vectorised batch path never build it.
        self._in_degrees: list[int] | None = None

    @abstractmethod
    def sample_rooted(self, root: int, rng: RandomSource) -> RRSet:
        """Generate an RR set for the given root node."""

    def sample(self, rng) -> RRSet:
        """Generate a random RR set: uniform random root, fresh live world."""
        source = resolve_rng(rng)
        root = source.randrange(self.graph.n)
        return self.sample_rooted(root, source)

    def sample_many(self, count: int, rng) -> list[RRSet]:
        """Generate ``count`` independent random RR sets."""
        source = resolve_rng(rng)
        randrange = source.py.randrange
        n = self.graph.n
        return [self.sample_rooted(randrange(n), source) for _ in range(count)]

    def sample_batch(self, roots, rng):
        """Generate one RR set per root, returned as a flat collection.

        The base implementation loops :meth:`sample_rooted` (Python speed);
        vectorised samplers override it with numpy-batched expansion.  Either
        way the result is a :class:`~repro.rrset.flat_collection
        .FlatRRCollection` holding the sets in root order, which is what the
        ``engine="vectorized"`` code paths consume.

        Falling back here is an engine degradation, not a correctness
        problem, so it is announced exactly once per sampler class instead
        of silently running orders of magnitude slower.
        """
        from repro.rrset.flat_collection import FlatRRCollection

        cls_name = type(self).__name__
        if cls_name not in RRSampler._batch_fallback_warned:
            RRSampler._batch_fallback_warned.add(cls_name)
            warnings.warn(
                f"{cls_name} has no vectorized sample_batch; falling back to "
                "the per-root Python sampling path (slow, single-core). "
                "Distribution is unchanged.",
                RuntimeWarning,
                stacklevel=2,
            )
        source = resolve_rng(rng)
        out = FlatRRCollection(self.graph.n, self.graph.m, track_traces=self.trace_edges)
        for root in roots:
            out.append(self.sample_rooted(int(root), source))
        return out

    def sample_random_batch(self, count: int, rng):
        """``count`` random-root RR sets as a flat collection."""
        source = resolve_rng(rng)
        roots = source.np.integers(0, self.graph.n, size=int(count), dtype=np.int64)
        return self.sample_batch(roots, source)

    def width_of(self, nodes) -> int:
        """``w(R)`` = Σ in-degree over the members (Equation 1)."""
        if self._in_degrees is None:
            self._in_degrees = self.graph.in_degrees().tolist()
        in_degrees = self._in_degrees
        return sum(in_degrees[v] for v in nodes)


def make_rr_sampler(graph: DiGraph, model, trace_edges: bool = False) -> RRSampler:
    """Build the right sampler for a diffusion model (instance or name).

    Dispatches on the resolved model type: IC and LT get their specialised
    samplers; :class:`~repro.diffusion.triggering.TriggeringModel` gets the
    generic triggering sampler driven by its distribution.  ``trace_edges``
    asks for live-edge traces on every sample (IC/LT only — the generic
    triggering sampler has no edge identity to record and raises).
    """
    from repro.diffusion.base import resolve_model
    from repro.diffusion.bounded import BoundedIndependentCascade
    from repro.diffusion.independent_cascade import IndependentCascade
    from repro.diffusion.linear_threshold import LinearThreshold
    from repro.diffusion.triggering import TriggeringModel
    from repro.rrset.ic_sampler import ICRRSampler
    from repro.rrset.lt_sampler import LTRRSampler
    from repro.rrset.triggering_sampler import TriggeringRRSampler

    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    if isinstance(resolved, BoundedIndependentCascade):
        return ICRRSampler(graph, max_depth=resolved.max_steps, trace_edges=trace_edges)
    if isinstance(resolved, IndependentCascade):
        return ICRRSampler(graph, trace_edges=trace_edges)
    if isinstance(resolved, LinearThreshold):
        return LTRRSampler(graph, trace_edges=trace_edges)
    if trace_edges:
        raise ValueError(
            f"edge tracing is not supported for model {resolved!r}; "
            "only the IC and LT samplers record live-edge traces"
        )
    if isinstance(resolved, TriggeringModel):
        return TriggeringRRSampler(graph, resolved.distribution)
    raise TypeError(f"no RR sampler registered for model {resolved!r}")
