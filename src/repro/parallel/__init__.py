"""Multicore sharded RR generation (`repro.parallel`).

The package behind the ``jobs=`` parameter on ``estimate_kpt``,
``refine_kpt``, ``node_selection``, ``tim``/``tim_plus``, ``ris``,
``SketchIndex`` and the ``repro-im`` CLI: a persistent worker pool that
broadcasts the graph's in-CSR arrays once (shared memory, memmap fallback),
shards every batch with a worker-count-invariant layout, and seeds each
shard from its own ``SeedSequence.spawn`` child stream — so results are
byte-identical for any number of workers.  See
:class:`~repro.parallel.engine.ParallelSampler` for the full contract.
"""

from repro.parallel.engine import (
    MAX_SHARDS,
    MIN_SHARD,
    ParallelSampler,
    jobs_for_engine,
    maybe_parallel,
    resolve_jobs,
    shard_sizes,
)

__all__ = [
    "ParallelSampler",
    "jobs_for_engine",
    "maybe_parallel",
    "resolve_jobs",
    "shard_sizes",
    "MIN_SHARD",
    "MAX_SHARDS",
]
