"""Zero-copy broadcast of numpy arrays to worker processes.

The parallel RR engine ships the graph's CSR arrays to every worker exactly
once, at pool spawn.  Two transports implement the same tiny contract —
*describe* yourself as a picklable dict, *attach* from that dict inside a
worker, hand back numpy views:

* :class:`SharedMemoryPack` — ``multiprocessing.shared_memory`` segments,
  one per array.  True shared pages under both ``fork`` and ``spawn`` start
  methods; only the creating process unlinks (pool workers attach by name,
  and the process tree shares one resource tracker, so a worker attaching
  or exiting never destroys the segment for everyone else).
* :class:`MemmapPack` — a scratch file plus read-only ``np.memmap`` views.
  The fallback for platforms/filesystems where POSIX shared memory is
  unavailable; page-cache sharing gives the same one-copy behaviour.

:func:`pack_arrays` picks the best available transport; ``attach_pack``
reverses it from the descriptor alone (workers never hold transport
objects from the parent).
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

__all__ = ["SharedMemoryPack", "MemmapPack", "pack_arrays", "attach_pack"]


def _describe(arrays: dict[str, np.ndarray]) -> dict[str, tuple[str, tuple[int, ...]]]:
    return {name: (str(array.dtype), tuple(array.shape)) for name, array in arrays.items()}


class SharedMemoryPack:
    """Arrays copied once into POSIX shared memory segments."""

    kind = "shared_memory"

    def __init__(self, arrays: dict[str, np.ndarray]):
        from multiprocessing import shared_memory

        self._segments = {}
        self._views: dict[str, np.ndarray] = {}
        self._owner = True
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self._segments[name] = segment
                self._views[name] = view
        except BaseException:
            self.close()
            raise
        self._layout = _describe(arrays)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "layout": self._layout,
            "names": {name: seg.name for name, seg in self._segments.items()},
        }

    def arrays(self) -> dict[str, np.ndarray]:
        return dict(self._views)

    def close(self) -> None:
        """Release the segments; the owner also unlinks them."""
        self._views.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            if self._owner:
                try:
                    segment.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        self._segments.clear()

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedMemoryPack":
        from multiprocessing import shared_memory

        pack = cls.__new__(cls)
        pack._segments = {}
        pack._views = {}
        pack._owner = False
        pack._layout = descriptor["layout"]
        for name, segment_name in descriptor["names"].items():
            segment = shared_memory.SharedMemory(name=segment_name)
            dtype, shape = descriptor["layout"][name]
            pack._segments[name] = segment
            pack._views[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        return pack


class MemmapPack:
    """Arrays written once to a scratch file, mapped read-only by workers."""

    kind = "memmap"

    def __init__(self, arrays: dict[str, np.ndarray], directory: str | None = None):
        fd, self._path = tempfile.mkstemp(prefix="repro-rr-graph-", suffix=".bin", dir=directory)
        self._owner = True
        self._views: dict[str, np.ndarray] = {}
        self._offsets: dict[str, int] = {}
        offset = 0
        with os.fdopen(fd, "wb") as handle:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                self._offsets[name] = offset
                handle.write(array.tobytes())
                offset += array.nbytes
        self._layout = _describe(arrays)
        for name, array in arrays.items():
            self._views[name] = self._map(name)

    def _map(self, name: str) -> np.ndarray:
        dtype, shape = self._layout[name]
        return np.memmap(
            self._path, dtype=np.dtype(dtype), mode="r",
            offset=self._offsets[name], shape=shape,
        )

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "layout": self._layout,
            "path": self._path,
            "offsets": dict(self._offsets),
        }

    def arrays(self) -> dict[str, np.ndarray]:
        return dict(self._views)

    def close(self) -> None:
        self._views.clear()
        if self._owner:
            try:
                os.unlink(self._path)
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    @classmethod
    def attach(cls, descriptor: dict) -> "MemmapPack":
        pack = cls.__new__(cls)
        pack._path = descriptor["path"]
        pack._offsets = dict(descriptor["offsets"])
        pack._layout = descriptor["layout"]
        pack._owner = False
        pack._views = {name: pack._map(name) for name in pack._layout}
        return pack


def pack_arrays(arrays: dict[str, np.ndarray], prefer: str | None = None):
    """Broadcast ``arrays`` with the best transport available.

    ``prefer`` forces ``"shared_memory"`` or ``"memmap"`` (tests and the
    platform fallback); default is shared memory with a silent memmap
    fallback when segment creation fails (no /dev/shm, SELinux denial, ...).
    """
    if prefer == "memmap":
        return MemmapPack(arrays)
    try:
        return SharedMemoryPack(arrays)
    except (ImportError, OSError):
        if prefer == "shared_memory":
            raise
        return MemmapPack(arrays)


def attach_pack(descriptor: dict):
    """Worker-side: rebuild array views from a :meth:`describe` payload."""
    if descriptor["kind"] == SharedMemoryPack.kind:
        return SharedMemoryPack.attach(descriptor)
    if descriptor["kind"] == MemmapPack.kind:
        return MemmapPack.attach(descriptor)
    raise ValueError(f"unknown shared-array transport {descriptor['kind']!r}")
