"""`ParallelSampler` — multicore sharded RR generation over a worker pool.

TIM's wall clock is dominated by RR-set generation, and every phase of it
(Algorithm 2's doubling loop, Algorithm 3's θ′ batch, node selection's θ
batch, sketch builds) funnels through ``sample_random_batch``/``sample_batch``.
This engine shards those calls across a persistent process pool while
keeping results **bit-reproducible for any worker count**:

* **Sharding is a pure function of the batch size** (never of ``jobs``):
  :func:`shard_sizes` cuts a batch into at most :data:`MAX_SHARDS` shards of
  at least :data:`MIN_SHARD` roots, so shards stay big enough to amortize
  IPC and the cut points cannot drift when the worker count changes.
* **One child seed stream per shard** via ``np.random.SeedSequence.spawn``:
  the parent draws a single 63-bit entropy value from the caller's RNG,
  seeds a ``SeedSequence`` with it, and spawns one child per shard.  Shard
  ``i`` always receives child ``i``, so the (shard → random stream) mapping
  is fixed no matter which worker runs it.
* **Merging in shard-index order** into one
  :class:`~repro.rrset.flat_collection.FlatRRCollection` — the packed
  arrays come out byte-identical for ``jobs=1`` (shards run inline, no pool)
  and ``jobs=8`` (shards run wherever a worker is free), and therefore so do
  KPT estimates, ``tim()`` seed sets, and persisted sketch files.

The pool itself is lazy (spawned on the first sharded call that wants one),
reused across every wave of a run, and broadcast the graph's in-CSR arrays
exactly once via :mod:`repro.parallel.shm` (shared memory, memmap-file
fallback).  A crashed wave is retried under a deterministic
:class:`~repro.faults.retry.RetryPolicy` (teardown + respawn + re-run of
the *same* shard seed stream, so a retried wave reproduces the exact bytes
of an un-faulted run) and, with the budget exhausted, the engine degrades
to in-process sharding — same bytes, one core, loud warning.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

import numpy as np

from repro.faults import injection as faults
from repro.faults.errors import TransientError
from repro.faults.retry import RetryPolicy
from repro.obs import runtime as obs
from repro.parallel.shared_graph import graph_payload
from repro.parallel.shm import pack_arrays
from repro.parallel.worker import init_worker, run_shard, run_shard_with, sampler_spec
from repro.rrset.flat_collection import FlatRRCollection
from repro.utils.rng import resolve_rng, spawn_seed_streams
from repro.utils.validation import require

__all__ = [
    "ParallelSampler",
    "resolve_jobs",
    "maybe_parallel",
    "shard_sizes",
    "jobs_for_engine",
]

#: Smallest shard worth a round trip to a worker: below this the pickle +
#: queue latency rivals the sampling itself (measured in bench_samplers'
#: --jobs sweep).  Also the shard size floor for inline (jobs=1) runs so the
#: shard layout is identical for every worker count.
MIN_SHARD = 1024

#: Upper bound on shards per batch: keeps the per-batch Python dispatch and
#: SeedSequence spawning O(1)-ish while still load-balancing up to 64 cores.
MAX_SHARDS = 64

#: Default wave retry budget: 3 attempts (one try + two respawns) — one more
#: respawn than the historical hard-coded single-respawn recovery, with
#: short deterministic backoff so a transiently OOM-killed pool gets a
#: moment to release memory before the redo.
DEFAULT_WAVE_RETRY = RetryPolicy(max_attempts=3, base_delay_ms=5.0, max_delay_ms=50.0)


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``jobs`` request: ``0`` means all cores, ``n>=1`` literal."""
    require(isinstance(jobs, int) and not isinstance(jobs, bool), "jobs must be an int")
    require(jobs >= 0, f"jobs must be >= 0 (0 = all cores); got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def shard_sizes(count: int, min_shard: int = MIN_SHARD, max_shards: int = MAX_SHARDS) -> list[int]:
    """Deterministic shard layout for a batch of ``count`` roots.

    Depends only on ``count`` (and the module constants) — crucially *not*
    on the worker count — so the same batch is always cut the same way.
    """
    if count <= 0:
        return []
    num = min(max_shards, max(1, -(-count // min_shard)))
    base, extra = divmod(count, num)
    return [base + 1 if i < extra else base for i in range(num)]


def jobs_for_engine(engine: str, jobs: int | None, stacklevel: int = 3) -> int | None:
    """Drop a ``jobs`` request that the scalar ``python`` engine cannot honour.

    The python engine samples one RR set at a time through
    ``sample_rooted``, which never reaches the sharded batch path — warn
    (loud degradation, not silent) and fall back to ``None``.
    """
    if jobs is not None and engine == "python":
        warnings.warn(
            "engine='python' samples one RR set at a time; jobs is ignored "
            "(use the vectorized engine for multicore sharding)",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
        return None
    return jobs


def maybe_parallel(sampler, jobs):
    """Wrap ``sampler`` for an explicit ``jobs`` request.

    Returns ``(sampler, owned)``.  ``jobs=None`` (the library default) keeps
    the legacy single-stream path untouched; an already-wrapped sampler is
    passed through so layered calls (``tim`` → ``node_selection``) share one
    pool — with a loud warning if the pass-through discards an explicit
    *conflicting* worker-count request.  ``owned`` tells the caller whether
    it should ``close()`` the wrapper when its run finishes.
    """
    if isinstance(sampler, ParallelSampler):
        if jobs is not None and resolve_jobs(jobs) != sampler.jobs:
            warnings.warn(
                f"sampler is already parallel with jobs={sampler.jobs}; "
                f"ignoring the conflicting jobs={jobs} request (close the "
                "wrapper and re-wrap to change the worker count)",
                RuntimeWarning,
                stacklevel=2,
            )
        return sampler, False
    if jobs is None:
        return sampler, False
    return ParallelSampler(sampler, jobs=jobs), True


def _shutdown_state(state: dict) -> None:
    """Idempotent teardown shared by ``close()`` and the GC finalizer."""
    executor = state.pop("executor", None)
    if executor is not None:
        executor.shutdown(wait=False, cancel_futures=True)
    pack = state.pop("pack", None)
    if pack is not None:
        pack.close()


class ParallelSampler:
    """Deterministic sharded facade over a model-specific RR sampler.

    Parameters
    ----------
    sampler:
        The base per-process sampler (``ICRRSampler``, ``LTRRSampler``, ...).
        Scalar entry points (``sample_rooted``, ``sample``, ``sample_many``)
        delegate to it unchanged.
    jobs:
        Worker count; ``0`` resolves to ``os.cpu_count()``.  ``jobs=1`` runs
        the shards inline — same shard layout, same seed streams, same
        bytes — without ever spawning a pool.
    start_method:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.  Workers only
        receive picklable payloads, so every method is safe.
    transport:
        Force the graph broadcast transport (``"shared_memory"`` or
        ``"memmap"``); default prefers shared memory and falls back.
    retry:
        Wave retry budget (:data:`DEFAULT_WAVE_RETRY` when ``None``): a
        crashed or fault-injected wave tears the pool down, backs off
        deterministically, respawns, and re-runs the same shard seed
        stream.  With the budget spent the engine degrades to in-process
        shards — results are byte-identical on every path.
    """

    def __init__(self, sampler, jobs: int = 1, *, start_method: str | None = None,
                 transport: str | None = None, retry: RetryPolicy | None = None):
        self._sampler = sampler
        self.jobs = resolve_jobs(jobs)
        self._start_method = start_method
        self._transport = transport
        self._retry = retry if retry is not None else DEFAULT_WAVE_RETRY
        self._spec = sampler_spec(sampler)
        self._state: dict = {}
        self._pool_disabled = False
        self._warned_inline = False
        self._finalizer = weakref.finalize(self, _shutdown_state, self._state)

    # ------------------------------------------------------------------
    # Delegated scalar surface
    # ------------------------------------------------------------------
    @property
    def graph(self):
        return self._sampler.graph

    @property
    def model_name(self) -> str:
        return self._sampler.model_name

    @property
    def base_sampler(self):
        """The wrapped per-process sampler."""
        return self._sampler

    def sample_rooted(self, root: int, rng):
        return self._sampler.sample_rooted(root, rng)

    def sample(self, rng):
        return self._sampler.sample(rng)

    def sample_many(self, count: int, rng):
        return self._sampler.sample_many(count, rng)

    def width_of(self, nodes) -> int:
        return self._sampler.width_of(nodes)

    def __getattr__(self, name):
        # Anything else (tuning knobs, ablation flags) reads through.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._sampler, name)

    # ------------------------------------------------------------------
    # Sharded batch generation
    # ------------------------------------------------------------------
    def sample_random_batch(self, count: int, rng) -> FlatRRCollection:
        """``count`` random-root RR sets, sharded; byte-stable across jobs."""
        source = resolve_rng(rng)
        sizes = shard_sizes(int(count))
        seeds = self._shard_seeds(source, len(sizes))
        tasks = [("random", seed, size) for seed, size in zip(seeds, sizes)]
        return self._merge(self._run_shards(tasks))

    def sample_batch(self, roots, rng) -> FlatRRCollection:
        """One RR set per given root, sharded by contiguous root slices."""
        source = resolve_rng(rng)
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        sizes = shard_sizes(int(roots.size))
        seeds = self._shard_seeds(source, len(sizes))
        tasks = []
        offset = 0
        for seed, size in zip(seeds, sizes):
            tasks.append(("roots", seed, roots[offset : offset + size]))
            offset += size
        return self._merge(self._run_shards(tasks))

    def _shard_seeds(self, source, num_shards: int) -> list[int]:
        """One child stream per shard, derived from a single parent draw.

        The parent's RNG advances by exactly one ``getrandbits`` call per
        batch regardless of shard or worker count, so multi-phase runs
        (KPT estimation → refinement → selection) consume the caller's
        stream identically for every ``jobs`` value.
        """
        entropy = source.py.getrandbits(63)
        return spawn_seed_streams(entropy, num_shards)

    def _merge(self, shards) -> FlatRRCollection:
        graph = self._sampler.graph
        track = bool(getattr(self._sampler, "trace_edges", False))
        out = FlatRRCollection(graph.n, graph.m, track_traces=track)
        for ptr, nodes, roots, widths, costs, trace_ptr, trace_edges in shards:
            out.extend_arrays(roots=roots, ptr=ptr, nodes=nodes, widths=widths,
                              costs=costs, trace_ptr=trace_ptr, trace_edges=trace_edges)
        return out

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _run_shards(self, tasks) -> list:
        if not tasks:
            return []
        with obs.trace("sampling.parallel_wave", shards=len(tasks), jobs=self.jobs):
            return self._run_shards_inner(tasks)

    def _run_shards_inner(self, tasks) -> list:
        delays = self._retry.delays_ms()
        last_error: BaseException | None = None
        for attempt in range(self._retry.max_attempts):
            if attempt > 0:
                # Deterministic backoff before the respawn: a transiently
                # OOM-killed pool gets a moment to release memory before the
                # redo (same shards, same seeds, same bytes).
                time.sleep(delays[attempt - 1] / 1000.0)
                obs.add("parallel.pool_respawns")
            try:
                faults.checkpoint("parallel.wave")
                executor = self._pool_available() if self.jobs > 1 else None
                if executor is None:
                    return self._run_shards_inline(tasks)
                obs.add("parallel.pool_waves")
                return list(executor.map(run_shard, tasks))
            except (BrokenExecutor, TransientError) as exc:
                last_error = exc
                self._teardown_pool()
        self._disable_pool(
            f"sampling wave failed {self._retry.max_attempts} times "
            f"(last: {last_error}); continuing with in-process shards"
        )
        # No checkpoint on the degraded path: once the retry budget is spent
        # the wave must complete, so injected faults cannot keep it down.
        return self._run_shards_inline(tasks)

    def _run_shards_inline(self, tasks) -> list:
        """In-process shard execution (jobs=1 or a degraded pool)."""
        if not obs.enabled():
            return [run_shard_with(self._sampler, task) for task in tasks]
        results = []
        for task in tasks:
            started = obs.now()
            results.append(run_shard_with(self._sampler, task))
            obs.observe("parallel.shard_seconds", obs.now() - started)
        obs.add("parallel.inline_shards", len(tasks))
        return results

    def _pool_available(self) -> ProcessPoolExecutor | None:
        """The live executor, lazily spawning it; ``None`` when degraded."""
        if self._pool_disabled:
            return None
        if self._spec is None:
            self._disable_pool(
                f"{type(self._sampler).__name__} cannot be rebuilt in worker "
                "processes; sampling shards in-process instead"
            )
            return None
        executor = self._state.get("executor")
        if executor is not None:
            return executor
        try:
            import multiprocessing

            context = multiprocessing.get_context(self._start_method)
            pack = pack_arrays(graph_payload(self._sampler.graph), prefer=self._transport)
        except (OSError, ValueError, ImportError) as exc:
            self._disable_pool(f"could not broadcast the graph ({exc}); "
                               "sampling shards in-process instead")
            return None
        # The pack goes into _state *before* the executor is built so a
        # failed spawn still releases the graph-sized segments via teardown.
        self._state["pack"] = pack
        try:
            payload = {
                "graph": pack.describe(),
                "num_nodes": self._sampler.graph.n,
                "spec": self._spec,
            }
            executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=context,
                initializer=init_worker,
                initargs=(payload,),
            )
        except (OSError, ValueError, ImportError) as exc:
            self._disable_pool(f"could not spawn the worker pool ({exc}); "
                               "sampling shards in-process instead")
            return None
        self._state["executor"] = executor
        return executor

    def _teardown_pool(self) -> None:
        _shutdown_state(self._state)

    def _disable_pool(self, reason: str) -> None:
        self._teardown_pool()
        self._pool_disabled = True
        obs.add("parallel.pool_degraded")
        obs.degraded("pool_inline")
        if not self._warned_inline:
            self._warned_inline = True
            warnings.warn(
                f"parallel RR generation degraded: {reason} "
                "(results are unchanged — sharding is worker-count invariant)",
                RuntimeWarning,
                stacklevel=3,
            )

    def close(self) -> None:
        """Shut the pool down and release the shared graph arrays."""
        self._teardown_pool()

    def __enter__(self) -> "ParallelSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelSampler({type(self._sampler).__name__}, jobs={self.jobs}, "
            f"pool={'live' if self._state.get('executor') else 'idle'})"
        )
