"""A worker-side stand-in for :class:`~repro.graphs.digraph.DiGraph`.

RR-set generation only ever walks *in*-edges (the reverse BFS of Section
3.1), so the parent broadcasts exactly the in-CSR triplet —
``in_ptr``/``in_idx``/``in_prob`` — plus ``n`` and ``m``.  This class wraps
the attached views with the slice of the ``DiGraph`` surface the samplers
touch: CSR attributes, ``in_degrees``, the cached Python adjacency lists the
scalar tail path uses, and edge-list views (``src``/``dst``/``prob``)
reconstructed from the in-CSR grouping so model validators (e.g.
``validate_lt_weights``) run unchanged.

The arrays may be read-only (shared memory or memmap) — every sampler treats
the graph as immutable, so that is exactly right.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SharedGraph", "graph_payload"]

_GRAPH_ARRAYS = ("in_ptr", "in_idx", "in_prob")


def graph_payload(graph) -> dict[str, np.ndarray]:
    """The arrays a :class:`SharedGraph` needs, keyed for the transport."""
    return {name: getattr(graph, name) for name in _GRAPH_ARRAYS}


class SharedGraph:
    """In-CSR graph view reconstructed inside a worker process."""

    __slots__ = ("n", "m", "in_ptr", "in_idx", "in_prob", "_in_adj_cache")

    def __init__(self, num_nodes: int, in_ptr, in_idx, in_prob):
        self.n = int(num_nodes)
        self.m = int(in_idx.size)
        self.in_ptr = in_ptr
        self.in_idx = in_idx
        self.in_prob = in_prob
        self._in_adj_cache = None

    @classmethod
    def from_arrays(cls, num_nodes: int, arrays: dict[str, np.ndarray]) -> "SharedGraph":
        return cls(num_nodes, arrays["in_ptr"], arrays["in_idx"], arrays["in_prob"])

    # -- DiGraph-compatible surface used by the samplers ----------------
    @property
    def num_nodes(self) -> int:
        return self.n

    @property
    def num_edges(self) -> int:
        return self.m

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.in_ptr)

    def in_degree(self, v: int) -> int:
        return int(self.in_ptr[v + 1] - self.in_ptr[v])

    def in_adjacency(self) -> tuple[list[list[int]], list[list[float]]]:
        if self._in_adj_cache is None:
            idx_list = self.in_idx.tolist()
            prob_list = self.in_prob.tolist()
            ptr_list = self.in_ptr.tolist()
            neighbors = [idx_list[ptr_list[v] : ptr_list[v + 1]] for v in range(self.n)]
            probs = [prob_list[ptr_list[v] : ptr_list[v + 1]] for v in range(self.n)]
            self._in_adj_cache = (neighbors, probs)
        return self._in_adj_cache

    # -- edge-list views (validators iterate these, never mutate) -------
    @property
    def src(self) -> np.ndarray:
        """Edge sources in in-CSR order (grouped by destination)."""
        return self.in_idx

    @property
    def dst(self) -> np.ndarray:
        """Edge destinations in in-CSR order."""
        return np.repeat(np.arange(self.n, dtype=np.int64), self.in_degrees())

    @property
    def prob(self) -> np.ndarray:
        """Edge probabilities in in-CSR order."""
        return self.in_prob

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedGraph(n={self.n}, m={self.m})"
