"""Worker-process side of the parallel RR engine.

Every function here must stay importable at module top level (``spawn``
start-method pickling) and free of parent-process state: a worker receives
one *payload* at pool initialisation — the shared-graph transport descriptor
plus a sampler *spec* — attaches the arrays, rebuilds its own sampler bound
to the :class:`~repro.parallel.shared_graph.SharedGraph`, and then answers
shard tasks until the pool shuts down.

A shard task is ``(mode, seed, payload)``:

* ``("random", seed, count)`` — draw ``count`` uniform roots from the
  shard's own :class:`~repro.utils.rng.RandomSource` (seeded from the
  parent's ``SeedSequence.spawn`` child), then sample;
* ``("roots", seed, roots)`` — sample the given roots with the shard
  stream.

:func:`run_shard_with` is the single source of truth for shard execution:
the parent runs the *same* function inline for ``jobs=1`` (and as the
degraded fallback), which is what makes results byte-identical for every
worker count.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.shared_graph import SharedGraph
from repro.parallel.shm import attach_pack
from repro.utils.rng import RandomSource

__all__ = ["sampler_spec", "build_sampler", "run_shard_with", "init_worker", "run_shard"]

#: Per-process worker state: the attached transport and the rebuilt sampler.
_STATE: dict = {}


def sampler_spec(sampler) -> dict | None:
    """A picklable recipe to rebuild ``sampler`` in a worker, or ``None``.

    Only exact sampler types with array-only construction inputs are
    supported; unknown types (e.g. triggering samplers bound to arbitrary
    distribution objects) return ``None`` and the engine degrades to
    in-process sharding.
    """
    from repro.rrset.ic_sampler import ICRRSampler
    from repro.rrset.lt_sampler import LTRRSampler

    if type(sampler) is ICRRSampler:
        return {
            "kind": "ic",
            "use_fast_path": sampler.use_fast_path,
            "fast_path_min_degree": sampler.fast_path_min_degree,
            "max_depth": sampler.max_depth,
            "use_geometric_skip": sampler.use_geometric_skip,
            "trace_edges": sampler.trace_edges,
        }
    if type(sampler) is LTRRSampler:
        return {"kind": "lt", "trace_edges": sampler.trace_edges}
    return None


def build_sampler(graph, spec: dict):
    """Rebuild the sampler described by :func:`sampler_spec` on ``graph``."""
    kind = spec["kind"]
    if kind == "ic":
        from repro.rrset.ic_sampler import ICRRSampler

        return ICRRSampler(
            graph,
            use_fast_path=spec["use_fast_path"],
            fast_path_min_degree=spec["fast_path_min_degree"],
            max_depth=spec["max_depth"],
            use_geometric_skip=spec["use_geometric_skip"],
            trace_edges=spec.get("trace_edges", False),
        )
    if kind == "lt":
        from repro.rrset.lt_sampler import LTRRSampler

        return LTRRSampler(graph, trace_edges=spec.get("trace_edges", False))
    raise ValueError(f"unknown sampler spec kind {kind!r}")


def run_shard_with(sampler, task):
    """Execute one shard task against ``sampler``; returns packed arrays.

    The returned tuple mirrors ``FlatRRCollection.extend_arrays`` inputs:
    ``(ptr, nodes, roots, widths, costs, trace_ptr, trace_edges)`` with
    ``ptr`` local (starting at 0); the trace members are ``None`` unless the
    sampler records edge traces.  Arrays are copied out of the collection's
    over-allocated buffers so the IPC payload is exactly the shard's live
    data.
    """
    mode, seed, payload = task
    source = RandomSource(seed)
    if mode == "random":
        roots = source.np.integers(0, sampler.graph.n, size=int(payload), dtype=np.int64)
    elif mode == "roots":
        roots = np.ascontiguousarray(payload, dtype=np.int64)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown shard mode {mode!r}")
    batch = sampler.sample_batch(roots, source)
    has_traces = batch.has_traces
    return (
        batch.ptr_array.copy(),
        batch.nodes_array.copy(),
        batch.roots_array.copy(),
        batch.widths_array.copy(),
        batch.costs_array.copy(),
        batch.trace_ptr_array.copy() if has_traces else None,
        batch.trace_edges_array.copy() if has_traces else None,
    )


def init_worker(payload: dict) -> None:
    """Pool initializer: attach the shared graph, rebuild the sampler."""
    pack = attach_pack(payload["graph"])
    graph = SharedGraph.from_arrays(payload["num_nodes"], pack.arrays())
    _STATE["pack"] = pack
    _STATE["sampler"] = build_sampler(graph, payload["spec"])


def run_shard(task):
    """Pool task entry point (initializer must have run first)."""
    return run_shard_with(_STATE["sampler"], task)
