"""Incremental RR-sketch repair under single-edge graph updates.

A cold :class:`~repro.sketch.index.SketchIndex` rebuild resamples all θ RR
sets after *any* graph change.  This module repairs the collection instead:
it identifies exactly the RR sets whose generation could have been changed
by the update, resamples only those (with their original roots, through
whatever sampler the caller provides — typically a
:class:`~repro.parallel.engine.ParallelSampler`, whose
``SeedSequence.spawn`` shard streams and shard-order merge keep the repair
deterministic for any worker count), and splices the replacements into a
fresh packed collection.

Invalidation policy
-------------------
The reverse traversals only ever *examine* in-edges of visited nodes, so a
set whose generation never looked at the updated edge is — under the
standard live-edge coupling — **exactly** the set the new graph would have
produced from the same coins.  With live-edge traces
(:attr:`FlatRRCollection.trace_edges_array`) the policy tightens further;
per model and operation on edge ``u -> v`` (old in-CSR id ``q``, old slice
``[lo, hi)`` of ``v``):

===========  =====================================  =================================
op           IC (trace = successful coins)          LT (trace = chosen edge per node)
===========  =====================================  =================================
insert       ``v ∈ R``                              ``v ∈ R`` and v's draw hit the
                                                    stop mass (no trace edge in
                                                    ``[lo, hi)`` — the appended edge
                                                    only occupies new CDF mass)
delete       ``q ∈ trace`` (a failed coin stays     trace edge in ``[q, hi)`` (picks
             failed when the edge disappears)       before ``q`` keep their CDF
                                                    prefix; the stop mass only grows)
reweight ↓   ``q ∈ trace``                          trace edge in ``[q, hi)``
reweight ↑   ``v ∈ R`` and ``q ∉ trace`` (a         ``v ∈ R`` and no trace edge in
             successful coin stays successful)      ``[lo, q)``
===========  =====================================  =================================

Without traces every rule degrades to the safe coarse criterion ``v ∈ R``.

Kept sets are patched where the topology change shifts their *width* (the
``w(R)`` behind KPT): deleting ``u -> v`` lowers every kept member-set's
width by one; an LT insert raises it (IC inserts invalidate all member
sets, so nothing to patch).

Exactness
---------
For **IC with traces** repair is *exact in distribution* — the repaired
collection is a draw from the new graph's RR distribution, no resampling
involved.  The trace records every live examined edge, which is the whole
of the sample's randomness that survives an update:

* **insert / reweight ↑** — conditioned on the invalidation event, the
  updated edge's coin is (re)flipped with exactly the conditional success
  probability (``p`` for a fresh edge, ``(p' − p)/(1 − p)`` for a coin that
  failed at ``p``); on success the reverse BFS *continues* from the edge's
  source with fresh coins, examining only in-edges of newly reached nodes
  (every member's in-edges were already examined — their coins stand).
* **delete / reweight ↓** — a live coin survives a down-weight with
  probability ``p'/p``; when it dies (always, for a delete) the member set
  shrinks to the nodes still reverse-reachable from the root **over the
  stored live edges**.  No coin needs redrawing: dropped nodes were only
  ever expanded because of the dead edge, so their coins "unhappen", and
  the surviving trace is exactly the new sample's live-edge record.

For **LT** (and untraced collections) the affected sets are resampled
fresh under the new graph with their original roots — which keeps the
root sequence, and hence the coupling with a cold rebuild from the same
seed, intact.  The one approximation (documented, and measured by the
statistical suite): a resampled set is drawn from the new graph's
*unconditioned* RR distribution rather than the distribution conditioned
on the invalidation event, a bias of order ``P(affected) · ε_cond`` per
set that vanishes as updates touch a vanishing fraction of sets.  Kept
sets are exact in every mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.delta import GraphDelta
from repro.rrset.flat_collection import FlatRRCollection
from repro.utils.rng import resolve_rng
from repro.utils.validation import require

__all__ = ["RepairReport", "affected_set_ids", "repair_collection"]

#: Models whose invalidation rules are implemented.  Bounded-horizon IC is
#: deliberately absent: an edge update can change members' *live distances*,
#: so membership-based invalidation is unsound under depth truncation.
SUPPORTED_MODELS = ("IC", "LT")


@dataclass(frozen=True)
class RepairReport:
    """What one :func:`repair_collection` call did.

    ``num_candidates`` counts the sets the invalidation rule flagged;
    ``num_affected`` the sets whose stored bytes actually changed (on the
    exact IC path a flagged set survives unchanged when its conditional
    coin keeps the old outcome).  ``exact`` distinguishes the
    distribution-exact IC trace repair from the resampling path.
    """

    op: str
    u: int
    v: int
    model: str
    num_sets: int
    num_affected: int
    num_patched: int
    used_traces: bool
    num_candidates: int = 0
    exact: bool = False

    @property
    def affected_fraction(self) -> float:
        return self.num_affected / self.num_sets if self.num_sets else 0.0

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "u": self.u,
            "v": self.v,
            "model": self.model,
            "num_sets": self.num_sets,
            "num_affected": self.num_affected,
            "num_candidates": self.num_candidates,
            "num_patched": self.num_patched,
            "used_traces": self.used_traces,
            "exact": self.exact,
            "affected_fraction": self.affected_fraction,
        }


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def _member_set_ids(collection: FlatRRCollection, v: int) -> np.ndarray:
    """Sorted ids of sets containing node ``v`` (one scan of the payload)."""
    hits = np.flatnonzero(collection.nodes_array == v)
    if hits.size == 0:
        return hits
    # Entry j belongs to the set whose ptr range covers j; members are
    # unique per set, so the result is already sorted and duplicate-free.
    return np.searchsorted(collection.ptr_array, hits, side="right") - 1


def _trace_range_set_ids(collection: FlatRRCollection, lo: int, hi: int) -> np.ndarray:
    """Sorted unique ids of sets with a trace edge id in ``[lo, hi)``."""
    trace = collection.trace_edges_array
    hits = np.flatnonzero((trace >= lo) & (trace < hi))
    if hits.size == 0:
        return hits
    ids = np.searchsorted(collection.trace_ptr_array, hits, side="right") - 1
    return np.unique(ids)


def affected_set_ids(collection: FlatRRCollection, delta: GraphDelta,
                     model_name: str) -> np.ndarray:
    """Sorted ids of RR sets the update could have changed (see module doc)."""
    require(model_name in SUPPORTED_MODELS,
            f"incremental repair supports models {SUPPORTED_MODELS}; got {model_name!r}")
    op, v = delta.op, delta.v
    q, lo, hi = delta.in_pos, delta.slice_lo, delta.slice_hi
    if op == "reweight" and delta.new_prob == delta.old_prob:
        return np.empty(0, dtype=np.int64)
    if not collection.has_traces:
        # Coarse but safe: the update edge could only be examined while
        # expanding v, so only sets containing v can be affected.
        return _member_set_ids(collection, v)
    if model_name == "IC":
        if op == "insert":
            return _member_set_ids(collection, v)
        if op == "delete":
            return _trace_range_set_ids(collection, q, q + 1)
        if delta.new_prob < delta.old_prob:
            return _trace_range_set_ids(collection, q, q + 1)
        # Reweight up: failed coins may now succeed; successful ones stay
        # successful (same uniform, larger threshold), so exclude them.
        memb = _member_set_ids(collection, v)
        live = _trace_range_set_ids(collection, q, q + 1)
        return np.setdiff1d(memb, live, assume_unique=True)
    # LT: each visited node consumed one inverse-CDF draw over its slice.
    if op == "insert":
        # The appended edge sorts last in the slice, claiming CDF mass that
        # previously belonged to "stop": only stop-draws can flip.
        memb = _member_set_ids(collection, v)
        picked = _trace_range_set_ids(collection, lo, hi)
        return np.setdiff1d(memb, picked, assume_unique=True)
    if op == "delete" or delta.new_prob < delta.old_prob:
        # CDF positions before q are untouched; picks at or after q (and
        # nothing else) can shift.
        return _trace_range_set_ids(collection, q, hi)
    # Reweight up: picks strictly before q are safe, everything else
    # (later picks and stop-draws) sits on shifted CDF mass.
    memb = _member_set_ids(collection, v)
    safe = _trace_range_set_ids(collection, lo, q)
    return np.setdiff1d(memb, safe, assume_unique=True)


# ----------------------------------------------------------------------
# Splice
# ----------------------------------------------------------------------
def _splice_payload(old_ptr, old_payload, repl_ptr, repl_payload,
                    affected) -> tuple[np.ndarray, np.ndarray]:
    """Rebuild one CSR payload with ``affected`` segments replaced.

    Returns ``(new_ptr, new_payload)``.  ``repl_payload`` holds the
    replacement segments for the affected ids, in affected order.

    The kept payload between two consecutive affected sets is one
    contiguous run of the old array, so the whole splice is a
    ``np.concatenate`` of ``2·|affected| + 1`` slices — memcpy speed, no
    index gathers.  With typical single-edge updates invalidating a
    fraction of a percent of θ, this is what keeps repair latency flat in
    the sketch size.
    """
    num_sets = old_ptr.size - 1
    old_sizes = np.diff(old_ptr)
    repl_sizes = np.diff(repl_ptr)
    # new_ptr = old_ptr plus the running size shift of earlier replacements.
    shift = np.zeros(num_sets, dtype=np.int64)
    shift[affected] = repl_sizes - old_sizes[affected]
    np.cumsum(shift, out=shift)
    new_ptr = old_ptr.astype(np.int64, copy=True)
    new_ptr[1:] += shift
    pieces = []
    cursor = 0
    for position, set_id in enumerate(affected.tolist()):
        pieces.append(old_payload[old_ptr[cursor] : old_ptr[set_id]])
        pieces.append(repl_payload[repl_ptr[position] : repl_ptr[position + 1]])
        cursor = set_id + 1
    pieces.append(old_payload[old_ptr[cursor] :])
    return new_ptr, np.concatenate(pieces)


# ----------------------------------------------------------------------
# Exact IC repair (extension / shrink over the stored live edges)
# ----------------------------------------------------------------------
def _extend_ic(new_graph, member_set: set, start: int, random01,
               trace_out: list) -> list[int]:
    """Continue the reverse BFS from ``start`` with fresh coins.

    Only in-edges of *newly* reached nodes are examined — every existing
    member's in-edges were examined during the original generation and
    their coins stand.  Successful coins (including into existing members)
    are appended to ``trace_out`` as new-graph in-CSR ids.
    """
    new_nodes: list[int] = []
    if start in member_set:
        return new_nodes
    in_ptr, in_idx, in_prob = new_graph.in_ptr, new_graph.in_idx, new_graph.in_prob
    member_set.add(start)
    new_nodes.append(start)
    frontier = [start]
    while frontier:
        current = frontier.pop()
        lo, hi = int(in_ptr[current]), int(in_ptr[current + 1])
        for position in range(lo, hi):
            if random01() < in_prob[position]:
                trace_out.append(position)
                source_node = int(in_idx[position])
                if source_node not in member_set:
                    member_set.add(source_node)
                    new_nodes.append(source_node)
                    frontier.append(source_node)
    return new_nodes


def _shrink_ic(collection: FlatRRCollection, old_graph, set_id: int,
               dead_edge: int) -> tuple[list[int], list[int]]:
    """Membership and trace (old-id space) after a live edge dies.

    The trace holds every live examined edge, so the post-update set is
    exactly the nodes still reverse-reachable from the root over the trace
    minus the dead edge; dropped nodes' coins "unhappen" (the new sampling
    would never have expanded them), so their trace entries go too.
    """
    trace = collection.trace_of(set_id).tolist()
    dst = (np.searchsorted(old_graph.in_ptr, collection.trace_of(set_id),
                           side="right") - 1).tolist()
    src = old_graph.in_idx[collection.trace_of(set_id)].tolist()
    pulls: dict[int, list[int]] = {}
    for edge, d, s in zip(trace, dst, src):
        if edge != dead_edge:
            pulls.setdefault(d, []).append(s)
    root = int(collection.roots_array[set_id])
    reached = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for source_node in pulls.get(node, ()):
            if source_node not in reached:
                reached.add(source_node)
                frontier.append(source_node)
    ptr = collection.ptr_array
    members = [
        node for node in collection.nodes_array[ptr[set_id] : ptr[set_id + 1]].tolist()
        if node in reached
    ]
    kept_trace = [e for e, d in zip(trace, dst) if e != dead_edge and d in reached]
    return members, kept_trace


def _repair_ic_exact(collection: FlatRRCollection, delta: GraphDelta,
                     source) -> tuple[FlatRRCollection, RepairReport]:
    """Distribution-exact repair for traced IC collections (module doc)."""
    op = delta.op
    new_graph, old_graph = delta.new_graph, delta.old_graph
    random01 = source.py.random
    candidates = affected_set_ids(collection, delta, "IC")
    in_deg_new = np.diff(new_graph.in_ptr)
    trace_dtype = collection.trace_edges_array.dtype
    node_dtype = collection.nodes_array.dtype

    if op == "reweight" and delta.new_prob > delta.old_prob:
        # A coin that failed at p succeeds at p' with the leftover mass.
        grow_probability = (delta.new_prob - delta.old_prob) / (1.0 - delta.old_prob) \
            if delta.old_prob < 1.0 else 0.0
    else:
        grow_probability = float(delta.new_prob or 0.0)  # insert: fresh coin at p
    keep_probability = (
        delta.new_prob / delta.old_prob
        if op == "reweight" and delta.new_prob < delta.old_prob else 0.0
    )

    modified: list[int] = []
    repl_members: list[np.ndarray] = []
    repl_traces: list[np.ndarray] = []
    ptr = collection.ptr_array
    for set_id in candidates.tolist():
        if op in ("insert",) or (op == "reweight" and delta.new_prob > delta.old_prob):
            if random01() >= grow_probability:
                continue  # the (conditional) coin failed: set stands
            members = collection.nodes_array[ptr[set_id] : ptr[set_id + 1]]
            # delta.in_pos is the updated edge's id in the NEW graph for an
            # insert and is reweight-invariant, so it is valid as-is.
            extension_trace: list[int] = [delta.in_pos]
            extension = _extend_ic(new_graph, set(members.tolist()), delta.u,
                                   random01, extension_trace)
            new_members = np.concatenate([
                members, np.asarray(extension, dtype=node_dtype)
            ])
            new_trace = np.concatenate([
                delta.remap_edge_ids(collection.trace_of(set_id)),
                np.asarray(extension_trace, dtype=trace_dtype),
            ])
        else:
            if op == "reweight" and random01() < keep_probability:
                continue  # the live coin survives the down-weight
            members_list, trace_list = _shrink_ic(
                collection, old_graph, set_id, delta.in_pos
            )
            new_members = np.asarray(members_list, dtype=node_dtype)
            new_trace = delta.remap_edge_ids(
                np.asarray(trace_list, dtype=trace_dtype)
            )
        modified.append(set_id)
        repl_members.append(new_members)
        repl_traces.append(new_trace.astype(trace_dtype, copy=False))

    affected = np.asarray(modified, dtype=np.int64)
    widths = collection.widths_array.astype(np.int64, copy=True)
    costs = collection.costs_array.astype(np.int64, copy=True)
    num_patched = 0
    if op in ("insert", "delete"):
        # v gained/lost an in-edge: every member set's width (and the IC
        # examined-edge cost) moves with it; modified sets are recomputed
        # from scratch below.
        memb = _member_set_ids(collection, delta.v)
        untouched = memb[~np.isin(memb, affected, assume_unique=True)]
        num_patched = int(untouched.size)
        shift = 1 if op == "insert" else -1
        widths[untouched] += shift
        costs[untouched] += shift
    if affected.size:
        repl_sizes = np.fromiter((m.size for m in repl_members), dtype=np.int64,
                                 count=affected.size)
        repl_widths = np.fromiter(
            (int(in_deg_new[m].sum()) for m in repl_members), dtype=np.int64,
            count=affected.size,
        )
        widths[affected] = repl_widths
        costs[affected] = repl_sizes + repl_widths

        repl_ptr = np.zeros(affected.size + 1, dtype=np.int64)
        np.cumsum(repl_sizes, out=repl_ptr[1:])
        new_ptr, new_nodes = _splice_payload(
            collection.ptr_array, collection.nodes_array,
            repl_ptr, np.concatenate(repl_members), affected,
        )
        repl_trace_sizes = np.fromiter((t.size for t in repl_traces), dtype=np.int64,
                                       count=affected.size)
        repl_trace_ptr = np.zeros(affected.size + 1, dtype=np.int64)
        np.cumsum(repl_trace_sizes, out=repl_trace_ptr[1:])
        trace_ptr, trace_edges = _splice_payload(
            collection.trace_ptr_array,
            delta.remap_edge_ids(collection.trace_edges_array),
            repl_trace_ptr, np.concatenate(repl_traces), affected,
        )
    else:
        new_ptr = collection.ptr_array.astype(np.int64, copy=True)
        new_nodes = collection.nodes_array.copy()
        trace_ptr = collection.trace_ptr_array.astype(np.int64, copy=True)
        remapped = delta.remap_edge_ids(collection.trace_edges_array)
        trace_edges = remapped.copy() if remapped is collection.trace_edges_array else remapped

    repaired = FlatRRCollection.from_arrays(
        num_nodes=collection.num_nodes,
        graph_edges=new_graph.m,
        ptr=new_ptr,
        nodes=new_nodes,
        roots=collection.roots_array.copy(),
        widths=widths,
        costs=costs,
        trace_ptr=trace_ptr,
        trace_edges=trace_edges,
    )
    report = RepairReport(
        op=op,
        u=delta.u,
        v=delta.v,
        model="IC",
        num_sets=len(collection),
        num_affected=int(affected.size),
        num_candidates=int(candidates.size),
        num_patched=num_patched,
        used_traces=True,
        exact=True,
    )
    return repaired, report


def repair_collection(collection: FlatRRCollection, delta: GraphDelta, sampler,
                      rng=None) -> tuple[FlatRRCollection, RepairReport]:
    """Repair ``collection`` across ``delta``; returns the new collection.

    ``sampler`` must be bound to ``delta.new_graph`` (a worker-pool wrapped
    sampler is fine — its ``sample_batch`` shards deterministically) and
    must record traces iff the collection does.  The input collection is
    never mutated, so memory-mapped (read-only) sketches repair cleanly.

    Traced IC collections take the exact extension/shrink path (no
    resampling); LT and untraced collections take the resampling path.
    """
    model_name = sampler.model_name
    require(model_name in SUPPORTED_MODELS,
            f"incremental repair supports models {SUPPORTED_MODELS}; got {model_name!r}")
    require(getattr(sampler, "max_depth", None) is None,
            "incremental repair is undefined for depth-bounded sampling "
            "(edge updates change live distances)")
    require(collection.num_nodes == delta.new_graph.n,
            "collection node universe does not match the updated graph")
    # Shape alone cannot catch a stale sampler (a reweight keeps n and m);
    # compare content when the sampler's graph can be fingerprinted (the
    # worker-side SharedGraph stand-in cannot, and falls back to shape).
    sampler_graph = sampler.graph
    if sampler_graph is not delta.new_graph:
        if hasattr(sampler_graph, "fingerprint"):
            require(sampler_graph.fingerprint() == delta.new_fingerprint,
                    "sampler is not bound to the post-update graph")
        else:
            require(sampler_graph.n == delta.new_graph.n
                    and sampler_graph.m == delta.new_graph.m,
                    "sampler is not bound to the post-update graph")
    require(bool(getattr(sampler, "trace_edges", False)) == collection.has_traces,
            "sampler tracing must match the collection (trace_edges flag)")
    if collection.has_traces and model_name == "IC":
        return _repair_ic_exact(collection, delta, resolve_rng(rng))

    num_sets = len(collection)
    affected = affected_set_ids(collection, delta, model_name)
    kept_mask = np.ones(num_sets, dtype=bool)
    kept_mask[affected] = False

    # --- resample the affected sets under the new graph, original roots ---
    roots = collection.roots_array.astype(np.int64, copy=True)
    repl = sampler.sample_batch(roots[affected], resolve_rng(rng))
    require(np.array_equal(repl.roots_array, roots[affected].astype(repl.roots_array.dtype)),
            "replacement batch lost root alignment")

    # --- widths/costs: scatter replacements, patch kept member sets -------
    widths = collection.widths_array.astype(np.int64, copy=True)
    costs = collection.costs_array.astype(np.int64, copy=True)
    num_patched = 0
    if delta.op in ("insert", "delete"):
        memb = _member_set_ids(collection, delta.v)
        kept_memb = memb[kept_mask[memb]]
        num_patched = int(kept_memb.size)
        if kept_memb.size:
            # w(R) counts every edge of G pointing into R; v's in-degree
            # changed by one, so every kept set containing v shifts with it.
            shift = 1 if delta.op == "insert" else -1
            widths[kept_memb] += shift
            if model_name == "IC":
                # IC's generation cost is |R| + w(R) examined edges.  (Under
                # IC an insert invalidates every member set, so only deletes
                # actually patch; LT cost is 2|R|, width-independent.)
                costs[kept_memb] += shift
    if affected.size:
        widths[affected] = repl.widths_array
        costs[affected] = repl.costs_array

    # --- splice the member payload (and traces, remapped) -----------------
    if affected.size:
        new_ptr, new_nodes = _splice_payload(
            collection.ptr_array, collection.nodes_array,
            repl.ptr_array, repl.nodes_array, affected,
        )
    else:
        new_ptr = collection.ptr_array.astype(np.int64, copy=True)
        new_nodes = collection.nodes_array.copy()
    trace_ptr = trace_edges = None
    if collection.has_traces:
        # Kept traces address the old in-CSR id space; shift them into the
        # new one — dtype-preserving (int32 + bool stays int32), and a pure
        # pass-through for reweights.  (A deleted edge's own id never
        # survives: any set whose trace held it is invalidated above for
        # both models.)
        remapped = delta.remap_edge_ids(collection.trace_edges_array)
        if affected.size:
            trace_ptr, trace_edges = _splice_payload(
                collection.trace_ptr_array, remapped,
                repl.trace_ptr_array, repl.trace_edges_array, affected,
            )
        else:
            trace_ptr = collection.trace_ptr_array.astype(np.int64, copy=True)
            trace_edges = remapped.copy() if remapped is collection.trace_edges_array else remapped

    repaired = FlatRRCollection.from_arrays(
        num_nodes=collection.num_nodes,
        graph_edges=delta.new_graph.m,
        ptr=new_ptr,
        nodes=new_nodes,
        roots=roots.astype(collection.roots_array.dtype, copy=False),
        widths=widths,
        costs=costs,
        trace_ptr=trace_ptr,
        trace_edges=trace_edges,
    )
    report = RepairReport(
        op=delta.op,
        u=delta.u,
        v=delta.v,
        model=model_name,
        num_sets=num_sets,
        num_affected=int(affected.size),
        num_candidates=int(affected.size),
        num_patched=num_patched,
        used_traces=collection.has_traces,
        exact=False,
    )
    return repaired, report
