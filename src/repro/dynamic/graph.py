"""`DynamicDiGraph` — a mutable overlay over immutable CSR snapshots.

The rest of the system (samplers, sketch files, service caches) is built on
immutable :class:`~repro.graphs.digraph.DiGraph` snapshots keyed by content
fingerprint.  ``DynamicDiGraph`` is the thin mutable façade an evolving
workload talks to: it holds the *current* snapshot, applies edge updates by
CSR re-materialization (:mod:`repro.graphs.delta`), bumps a version counter,
and keeps the fingerprint lineage so every historical cache key can be
traced to the version that produced it.

The returned :class:`~repro.graphs.delta.GraphDelta` objects are the
currency of incremental sketch repair — hold on to them in the order they
were produced and feed them to
:meth:`repro.sketch.index.SketchIndex.apply_update`.
"""

from __future__ import annotations

from repro.dynamic.updates import EdgeUpdate
from repro.graphs.delta import GraphDelta, delete_edge, insert_edge, reweight_edge
from repro.graphs.digraph import DiGraph
from repro.utils.validation import require

__all__ = ["DynamicDiGraph"]


class DynamicDiGraph:
    """Mutable edge set over immutable :class:`DiGraph` snapshots.

    Parameters
    ----------
    graph:
        The initial snapshot (version 0).
    """

    def __init__(self, graph: DiGraph):
        require(isinstance(graph, DiGraph), "DynamicDiGraph wraps a DiGraph snapshot")
        self._graph = graph
        self.version = 0
        #: ``(version, fingerprint)`` pairs, oldest first; entry 0 is the
        #: initial snapshot.  This is what lets a cache spot *any* stale key
        #: produced by an earlier version of this graph, not just the
        #: immediately preceding one.
        self.lineage: list[tuple[int, str]] = [(0, graph.fingerprint())]

    # ------------------------------------------------------------------
    # Snapshot accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The current immutable snapshot."""
        return self._graph

    @property
    def n(self) -> int:
        return self._graph.n

    @property
    def m(self) -> int:
        return self._graph.m

    @property
    def num_nodes(self) -> int:
        return self._graph.n

    @property
    def num_edges(self) -> int:
        return self._graph.m

    def fingerprint(self) -> str:
        """Fingerprint of the current snapshot."""
        return self._graph.fingerprint()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int, prob: float) -> GraphDelta:
        """Append edge ``u -> v`` with the given probability."""
        return self._commit(insert_edge(self._graph, u, v, prob))

    def delete_edge(self, u: int, v: int) -> GraphDelta:
        """Remove the first ``u -> v`` edge."""
        return self._commit(delete_edge(self._graph, u, v))

    def reweight_edge(self, u: int, v: int, prob: float) -> GraphDelta:
        """Replace the first ``u -> v`` edge's probability."""
        return self._commit(reweight_edge(self._graph, u, v, prob))

    def apply(self, update: EdgeUpdate) -> GraphDelta:
        """Apply a parsed :class:`EdgeUpdate` request."""
        return self.commit(self.preview(update))

    def preview(self, update: EdgeUpdate) -> GraphDelta:
        """Build the delta an update *would* produce, without committing.

        Lets callers validate the post-update snapshot (and repair derived
        state) before the mutation becomes visible; hand the delta to
        :meth:`commit` to make it current.  A never-committed preview has
        no effect.
        """
        if update.action == "insert":
            return insert_edge(self._graph, update.u, update.v, update.prob)
        if update.action == "delete":
            return delete_edge(self._graph, update.u, update.v)
        return reweight_edge(self._graph, update.u, update.v, update.prob)

    def commit(self, delta: GraphDelta) -> GraphDelta:
        """Make a previewed delta current (it must chain off this snapshot)."""
        require(delta.old_fingerprint == self._graph.fingerprint(),
                "delta does not chain off the current snapshot")
        return self._commit(delta)

    def _commit(self, delta: GraphDelta) -> GraphDelta:
        self._graph = delta.new_graph
        self.version += 1
        self.lineage.append((self.version, delta.new_fingerprint))
        return delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicDiGraph(n={self.n}, m={self.m}, version={self.version})"
