"""Dynamic-graph subsystem: evolving networks over the static RR machinery.

The paper's machinery assumes a static graph; this package opens the
evolving-network workload the ROADMAP targets.  Three layers:

* :class:`~repro.dynamic.graph.DynamicDiGraph` — a mutable overlay that
  applies edge inserts/deletes/reweights by CSR re-materialization
  (:mod:`repro.graphs.delta`) and versions every snapshot by fingerprint;
* :mod:`repro.dynamic.repair` — incremental RR-sketch repair: trace-aware
  invalidation plus deterministic resampling of only the affected sets;
* the integration points: :meth:`repro.sketch.index.SketchIndex
  .apply_update`, the service's ``update`` op, and the CLI ``update``
  subcommand.
"""

from repro.dynamic.graph import DynamicDiGraph
from repro.dynamic.repair import (
    RepairReport,
    affected_set_ids,
    repair_collection,
)
from repro.dynamic.updates import UPDATE_ACTIONS, EdgeUpdate, parse_update
from repro.graphs.delta import GraphDelta, delete_edge, insert_edge, reweight_edge

__all__ = [
    "DynamicDiGraph",
    "EdgeUpdate",
    "GraphDelta",
    "RepairReport",
    "UPDATE_ACTIONS",
    "affected_set_ids",
    "delete_edge",
    "insert_edge",
    "parse_update",
    "repair_collection",
    "reweight_edge",
]
