"""Edge-update descriptions: the wire format of the dynamic subsystem.

An :class:`EdgeUpdate` is the operation *request* ("insert 3 -> 7 at
p = 0.2"); applying it to a :class:`~repro.dynamic.graph.DynamicDiGraph`
yields a :class:`~repro.graphs.delta.GraphDelta` (the realised transition
between snapshots).  The JSON shape mirrors the service's JSONL query
protocol::

    {"op": "update", "action": "insert",   "u": 3, "v": 7, "p": 0.2}
    {"op": "update", "action": "delete",   "u": 3, "v": 7}
    {"op": "update", "action": "reweight", "u": 3, "v": 7, "p": 0.05}

(The outer ``"op": "update"`` envelope belongs to the service protocol;
:func:`parse_update` accepts dictionaries with or without it.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require

__all__ = ["EdgeUpdate", "parse_update", "UPDATE_ACTIONS"]

#: The supported mutation kinds.
UPDATE_ACTIONS = ("insert", "delete", "reweight")


def _is_int(value) -> bool:
    """A genuine integer — JSON ``true`` is a bool and bool is an int
    subclass, so a malformed request could otherwise address node 1."""
    return isinstance(value, int) and not isinstance(value, bool)


@dataclass(frozen=True)
class EdgeUpdate:
    """One requested edge mutation (validated on construction)."""

    action: str
    u: int
    v: int
    prob: float | None = None

    def __post_init__(self):
        require(self.action in UPDATE_ACTIONS,
                f"unknown update action {self.action!r}; expected one of {UPDATE_ACTIONS}")
        require(_is_int(self.u) and _is_int(self.v),
                "update endpoints u/v must be integers")
        if self.action == "delete":
            require(self.prob is None, "delete takes no probability")
        else:
            require(isinstance(self.prob, (int, float)) and not isinstance(self.prob, bool),
                    f"{self.action} needs a probability p")
            require(0.0 <= float(self.prob) <= 1.0,
                    f"edge probability must lie in [0, 1]; got {self.prob}")

    def as_dict(self) -> dict:
        """JSONL-ready representation (without the service envelope)."""
        out = {"action": self.action, "u": self.u, "v": self.v}
        if self.prob is not None:
            out["p"] = float(self.prob)
        return out


def parse_update(request: dict) -> EdgeUpdate:
    """Build an :class:`EdgeUpdate` from a JSONL request dictionary."""
    require(isinstance(request, dict), "update request must be a JSON object")
    action = request.get("action")
    require(isinstance(action, str), "update request needs an 'action' string")
    u, v = request.get("u"), request.get("v")
    require(_is_int(u) and _is_int(v), "update request needs integer 'u' and 'v'")
    prob = request.get("p", request.get("prob"))
    if prob is not None:
        require(isinstance(prob, (int, float)) and not isinstance(prob, bool),
                "update probability 'p' must be a number")
        prob = float(prob)
    return EdgeUpdate(action=action, u=u, v=v, prob=prob)
