"""Versioned on-disk format for RR sketches (``.npz``).

A *sketch file* is one uncompressed ``.npz`` archive holding the five packed
arrays of a :class:`~repro.rrset.flat_collection.FlatRRCollection` —
``ptr`` / ``nodes`` / ``roots`` / ``widths`` / ``costs`` — plus a
``meta_json`` byte array with the sampler provenance:

* ``format_version`` — bumped on any layout change; mismatches raise
  :class:`SketchVersionError` instead of misreading bytes,
* ``num_nodes`` / ``graph_edges`` — the node universe and ``m`` the
  estimators divide by,
* ``graph_fingerprint`` — :func:`repro.graphs.fingerprint.graph_fingerprint`
  of the sampled graph; :func:`load_sketch` refuses a mismatched graph
  (:class:`SketchGraphMismatchError`), because RR sets are only meaningful
  against the exact graph they were drawn from,
* sampler metadata: ``model``, ``theta`` (the sketch size, i.e. the
  ε-equivalent sample count), ``rng_seed``, and optional ``epsilon`` /
  ``ell`` / ``k`` / ``kpt_cache`` entries written by
  :class:`~repro.sketch.index.SketchIndex`.

Two load paths:

* **eager** (default) — ``np.load`` copies the arrays into fresh memory;
* **mmap** (``mmap=True``) — because ``np.savez`` stores members
  uncompressed (``ZIP_STORED``), each ``.npy`` member is a contiguous run
  of bytes inside the archive.  We locate each member's data offset from
  its zip local-file header, parse the ``.npy`` header in place, and hand
  back ``np.memmap`` views — so any number of service processes share one
  page-cache copy of a multi-gigabyte sketch.  ``np.load``'s own
  ``mmap_mode`` is silently ignored for ``.npz`` archives, hence the manual
  offset arithmetic.

Roundtrips are bit-exact: array dtypes and contents are preserved, so
``nbytes`` and every estimator agree before and after a save/load cycle.

Writes are **crash-safe**: :func:`save_sketch` writes to a same-directory
temp file, fsyncs it, and atomically renames over the target — a
process killed mid-write leaves the previous sketch intact.  The metadata
carries a ``payload_sha256`` checksum over the packed arrays;
:func:`load_sketch` verifies it and **quarantines** a corrupt file (renames
it to ``<path>.quarantined``) so a rebuild can recover the path without an
operator deleting bytes by hand.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zipfile
from typing import Any, Iterable

import numpy as np

from repro.faults import injection as faults
from repro.rrset.flat_collection import FlatRRCollection

__all__ = [
    "SKETCH_FORMAT_VERSION",
    "SketchFileError",
    "SketchVersionError",
    "SketchGraphMismatchError",
    "SketchCorruptionError",
    "save_sketch",
    "load_sketch",
    "read_sketch_meta",
]

#: Current on-disk format version; bump on any incompatible layout change.
#: (Edge traces were added as *optional* members — old readers ignore the
#: extra arrays and old files simply load without traces — so the version
#: stays at 1.)
SKETCH_FORMAT_VERSION = 1

_ARRAY_KEYS = ("ptr", "nodes", "roots", "widths", "costs")
_TRACE_KEYS = ("trace_ptr", "trace_edges")

#: Everything the zip/npy parsing stack is known to raise on damaged bytes.
#: Truncation surfaces as EOFError (np.load's magic read) or OSError;
#: bit-flipped framing as BadZipFile, ValueError, struct.error (a subclass
#: of ValueError is NOT guaranteed — it aliases to Exception-level
#: struct.error), or NotImplementedError (zipfile on bogus version /
#: flag / compression fields).
_READ_ERRORS = (
    zipfile.BadZipFile,
    zipfile.LargeZipFile,
    OSError,
    ValueError,
    EOFError,
    NotImplementedError,
    struct.error,
    IndexError,
)


class SketchFileError(ValueError):
    """The file is not a readable sketch (corrupt, truncated, wrong schema)."""

    #: Whether :func:`load_sketch` may move the file aside on this failure.
    #: ``False`` for errors where the file itself is intact (e.g. a
    #: compressed archive the mmap path cannot serve but eager load can).
    quarantinable: bool = True


class SketchVersionError(SketchFileError):
    """The sketch was written by an incompatible format version."""


class SketchGraphMismatchError(SketchFileError):
    """The sketch's recorded graph fingerprint does not match the graph."""


class SketchCorruptionError(SketchFileError):
    """The sketch's payload bytes do not match the recorded checksum."""


def _payload_checksum(arrays: "dict[str, np.ndarray[Any, Any]]") -> str:
    """SHA-256 over the packed array payloads (keys sorted for stability).

    Covers dtype, shape, and raw bytes of every array, so a single flipped
    payload bit — or a wrong-length truncation that still parses as a zip —
    fails verification.  The metadata block is *not* covered (the checksum
    lives inside it); metadata framing damage is caught by the JSON/schema
    checks instead.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(array.dtype.str.encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry so an atomic rename survives power loss."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories; best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_sketch(path: "str | os.PathLike[str]", collection: FlatRRCollection,
                meta: "dict[str, Any]") -> None:
    """Write ``collection`` plus ``meta`` as a versioned ``.npz`` sketch.

    Reserved keys (``format_version``, ``num_nodes``, ``graph_edges``,
    ``num_sets``) are stamped from the collection and must not be supplied
    with conflicting values in ``meta``.

    The write is atomic: bytes land in ``<path>.tmp`` (same directory, so
    the rename cannot cross filesystems), are ``fsync``\\ ed, and replace
    ``path`` in one ``os.replace``.  A crash at any point leaves either the
    old sketch or no sketch — never a torn file at ``path``.
    """
    full_meta: dict[str, Any] = dict(meta)
    stamped: dict[str, Any] = {
        "format_version": SKETCH_FORMAT_VERSION,
        "num_nodes": collection.num_nodes,
        "graph_edges": collection.graph_edges,
        "num_sets": len(collection),
        "has_traces": collection.has_traces,
    }
    for key, value in stamped.items():
        if key in full_meta and full_meta[key] != value:
            raise ValueError(
                f"meta key {key!r} conflicts with the collection ({full_meta[key]!r} != {value!r})"
            )
        full_meta[key] = value
    arrays: dict[str, np.ndarray[Any, Any]] = {
        "ptr": collection.ptr_array,
        "nodes": collection.nodes_array,
        "roots": collection.roots_array,
        "widths": collection.widths_array,
        "costs": collection.costs_array,
    }
    if collection.has_traces:
        arrays["trace_ptr"] = collection.trace_ptr_array
        arrays["trace_edges"] = collection.trace_edges_array
    # Stamped unconditionally (outside the conflict loop): a re-save of
    # meta recovered from an older file must replace, not preserve, the
    # previous checksum.
    full_meta["payload_sha256"] = _payload_checksum(arrays)
    meta_bytes = np.frombuffer(
        json.dumps(full_meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    rule = faults.checkpoint("sketch.save")
    target = os.fspath(path)
    tmp_path = target + ".tmp"
    try:
        # np.savez (not savez_compressed): ZIP_STORED members are what makes
        # the mmap load path possible.  Writing through an open handle keeps
        # the exact temp path — np.savez(tmp_path, ...) would silently
        # append ".npz" and strand the file somewhere we never rename from.
        with open(tmp_path, "wb") as handle:
            np.savez(handle, meta_json=meta_bytes, **arrays)
            if rule is not None and rule.truncate_at is not None:
                handle.truncate(rule.truncate_at)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(target))


def read_sketch_meta(path: "str | os.PathLike[str]") -> "dict[str, Any]":
    """Parse and validate only the metadata block of a sketch file."""
    try:
        with np.load(path, allow_pickle=False) as data:
            if "meta_json" not in data.files:
                raise SketchFileError(f"{path}: missing meta_json — not a sketch file")
            raw = bytes(np.asarray(data["meta_json"], dtype=np.uint8))
    except _READ_ERRORS as exc:
        if isinstance(exc, SketchFileError):
            raise
        raise SketchFileError(f"{path}: unreadable sketch archive ({exc})") from exc
    try:
        meta: Any = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SketchFileError(f"{path}: corrupt sketch metadata ({exc})") from exc
    if not isinstance(meta, dict):
        raise SketchFileError(f"{path}: sketch metadata is not an object")
    version = meta.get("format_version")
    if version != SKETCH_FORMAT_VERSION:
        raise SketchVersionError(
            f"{path}: sketch format version {version!r} is not supported "
            f"(this build reads version {SKETCH_FORMAT_VERSION})"
        )
    for key in ("num_nodes", "graph_edges", "num_sets"):
        if not isinstance(meta.get(key), int):
            raise SketchFileError(f"{path}: sketch metadata missing integer {key!r}")
    return dict(meta)


def _quarantine(path: "str | os.PathLike[str]") -> str | None:
    """Move a corrupt sketch aside; its new path, or ``None`` on failure."""
    target = os.fspath(path)
    aside = target + ".quarantined"
    try:
        os.replace(target, aside)
    except OSError:
        return None
    return aside


def load_sketch(
    path: "str | os.PathLike[str]",
    mmap: bool = False,
    expected_fingerprint: str | None = None,
    *,
    verify: bool = True,
    quarantine: bool = True,
) -> "tuple[FlatRRCollection, dict[str, Any]]":
    """Load a sketch file; returns ``(collection, metadata)``.

    Parameters
    ----------
    mmap:
        Memory-map the packed arrays read-only instead of copying them.
    expected_fingerprint:
        When given, the sketch's recorded ``graph_fingerprint`` must match
        exactly; a stale or wrong-graph sketch raises
        :class:`SketchGraphMismatchError`.
    verify:
        Check the recorded ``payload_sha256`` checksum against the loaded
        arrays (files written before checksums carry none and skip the
        check); a mismatch raises :class:`SketchCorruptionError`.
    quarantine:
        On a corruption-class failure (*not* a version or graph mismatch —
        those files are intact, just wrong), rename the file to
        ``<path>.quarantined`` before re-raising, so the caller can rebuild
        at ``path`` immediately.  The re-raised error carries the new
        location in its message and ``quarantined_path`` attribute.
    """
    try:
        return _load_sketch_inner(path, mmap, expected_fingerprint, verify)
    except (SketchVersionError, SketchGraphMismatchError):
        raise  # intact file, wrong version/graph: never quarantined
    except SketchFileError as exc:
        if not quarantine or not exc.quarantinable:
            raise
        aside = _quarantine(path)
        if aside is None:
            raise
        wrapped = type(exc)(f"{exc} (quarantined to {aside})")
        wrapped.quarantined_path = aside  # type: ignore[attr-defined]
        raise wrapped from exc


def _load_sketch_inner(
    path: "str | os.PathLike[str]", mmap: bool,
    expected_fingerprint: str | None, verify: bool,
) -> "tuple[FlatRRCollection, dict[str, Any]]":
    faults.checkpoint("sketch.load")
    meta = read_sketch_meta(path)
    if expected_fingerprint is not None:
        recorded = meta.get("graph_fingerprint")
        if recorded != expected_fingerprint:
            raise SketchGraphMismatchError(
                f"{path}: sketch was built for graph {recorded!r}, "
                f"not the given graph {expected_fingerprint!r}; rebuild the sketch"
            )
    keys = _ARRAY_KEYS + _TRACE_KEYS if meta.get("has_traces") else _ARRAY_KEYS
    try:
        if mmap:
            arrays = _mmap_npz_members(path, keys)
        else:
            with np.load(path, allow_pickle=False) as data:
                missing = [key for key in keys if key not in data.files]
                if missing:
                    raise SketchFileError(f"{path}: sketch archive missing arrays {missing}")
                arrays = {key: data[key] for key in keys}
    except _READ_ERRORS as exc:
        if isinstance(exc, SketchFileError):
            raise
        raise SketchFileError(f"{path}: unreadable sketch archive ({exc})") from exc
    recorded_sha = meta.get("payload_sha256")
    if verify and isinstance(recorded_sha, str):
        actual_sha = _payload_checksum(arrays)
        if actual_sha != recorded_sha:
            raise SketchCorruptionError(
                f"{path}: sketch payload checksum mismatch "
                f"(recorded {recorded_sha[:12]}…, got {actual_sha[:12]}…); "
                "the file is corrupt"
            )
    try:
        collection = FlatRRCollection.from_arrays(
            num_nodes=meta["num_nodes"],
            graph_edges=meta["graph_edges"],
            ptr=arrays["ptr"],
            nodes=arrays["nodes"],
            roots=arrays["roots"],
            widths=arrays["widths"],
            costs=arrays["costs"],
            trace_ptr=arrays.get("trace_ptr"),
            trace_edges=arrays.get("trace_edges"),
        )
    except ValueError as exc:
        raise SketchFileError(f"{path}: inconsistent sketch arrays ({exc})") from exc
    if len(collection) != meta["num_sets"]:
        raise SketchFileError(
            f"{path}: metadata records {meta['num_sets']} sets "
            f"but arrays hold {len(collection)}"
        )
    return collection, meta


# ----------------------------------------------------------------------
# Zero-copy .npz member mapping
# ----------------------------------------------------------------------
def _mmap_npz_members(path: "str | os.PathLike[str]",
                      names: Iterable[str]) -> "dict[str, np.ndarray[Any, Any]]":
    """Memory-map the named ``.npy`` members of an uncompressed ``.npz``.

    For each member: read its zip *local* file header (the central
    directory's name/extra lengths can differ from the local ones, so the
    data offset must come from the local header), then parse the ``.npy``
    header at that offset to learn dtype/shape/order, and finally map the
    raw array bytes with ``np.memmap(..., mode="r")``.
    """
    out: dict[str, np.ndarray[Any, Any]] = {}
    with zipfile.ZipFile(path) as archive:
        for name in names:
            member = name + ".npy"
            try:
                info = archive.getinfo(member)
            except KeyError:
                raise SketchFileError(f"{path}: sketch archive missing arrays ['{name}']")
            if info.compress_type != zipfile.ZIP_STORED:
                error = SketchFileError(
                    f"{path}: member {member} is compressed; mmap load needs "
                    "an uncompressed archive (np.savez, not savez_compressed)"
                )
                error.quarantinable = False  # intact file; eager load works
                raise error
            with open(path, "rb") as handle:
                handle.seek(info.header_offset)
                local_header = handle.read(30)
                if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                    raise SketchFileError(f"{path}: corrupt zip local header for {member}")
                name_len, extra_len = struct.unpack("<HH", local_header[26:30])
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                data_start = handle.tell()
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:
                    raise SketchFileError(
                        f"{path}: {member} uses unsupported .npy version {version}"
                    )
                payload_offset = handle.tell()
            expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if payload_offset - data_start + expected > info.file_size:
                raise SketchFileError(f"{path}: truncated array payload for {member}")
            out[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=payload_offset,
                shape=shape,
                order="F" if fortran else "C",
            )
    return out
