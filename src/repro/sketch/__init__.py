"""Persistent RR-sketch index and influence query service.

TIM's RR sets are *query-independent of k*: one sketch collection answers
seed selection for every budget, spread estimation for any seed set, and
marginal-gain probes.  This package turns that observation into a serving
subsystem:

* :mod:`repro.sketch.persistence` — a versioned ``.npz`` on-disk format for
  :class:`~repro.rrset.flat_collection.FlatRRCollection` (bit-exact
  roundtrips, optional ``mmap`` loading so processes share pages, graph
  fingerprint validation),
* :mod:`repro.sketch.index` — :class:`SketchIndex`, the reusable oracle:
  prebuilt inverted index, incremental lazy-greedy ``select(k)``,
  ``spread`` / ``marginal_gain`` / forced-seed queries, warm-start theta
  extension,
* :mod:`repro.sketch.service` — :class:`InfluenceService`, an LRU of
  indexes keyed by (graph fingerprint, model) behind a JSONL query front
  (the ``repro-im serve`` CLI).

Typical flow::

    from repro.sketch import SketchIndex

    index = SketchIndex.build(graph, "IC", k=10, epsilon=0.3, rng=0)
    index.save("nethept-ic.npz")                  # build once ...
    index = SketchIndex.load("nethept-ic.npz", graph=graph, mmap=True)
    seeds = index.select(25).seeds                # ... query for any k
    lift = index.marginal_gain(seeds, candidate=7)
"""

from repro.sketch.index import SketchIndex
from repro.sketch.persistence import (
    SKETCH_FORMAT_VERSION,
    SketchCorruptionError,
    SketchFileError,
    SketchGraphMismatchError,
    SketchVersionError,
    load_sketch,
    read_sketch_meta,
    save_sketch,
)
from repro.sketch.service import InfluenceService, ServiceStats

__all__ = [
    "SketchIndex",
    "InfluenceService",
    "ServiceStats",
    "SKETCH_FORMAT_VERSION",
    "SketchCorruptionError",
    "SketchFileError",
    "SketchGraphMismatchError",
    "SketchVersionError",
    "load_sketch",
    "read_sketch_meta",
    "save_sketch",
]
