"""`SketchIndex` — a reusable influence oracle over a persisted RR sketch.

TIM's structural insight (and Borgs et al.'s framing of RR sketches as an
oracle) is that a collection of random RR sets is *query-independent of k*:
one sketch answers seed selection for every budget, spread estimation for
any seed set, and marginal-gain probes — all without resampling.  The index
wraps a :class:`~repro.rrset.flat_collection.FlatRRCollection` with the two
prebuilt structures every query needs:

* per-node cover counts (one ``bincount`` over the packed member array),
* a CSR **inverted index** ``node → ids of the RR sets containing it``,

and keeps an *incremental* lazy-greedy selection state: ``select(5)`` then
``select(25)`` continues from the fifth pick instead of restarting, so a
service answering ascending-k queries pays each greedy round once.  Seed
output is bit-identical to :func:`repro.rrset.coverage.greedy_max_coverage`
(both resolve tied maxima toward the smaller node id), which is what
:func:`repro.core.node_selection.node_selection` runs — so routing
``tim``/``tim_plus`` through an index changes wall-clock, never seeds.

Warm-start theta extension: when a query demands a tighter ε than the sketch
was built for, :meth:`ensure_theta` appends freshly sampled RR sets via
``extend_flat`` (never resampling the existing prefix) and invalidates the
derived structures; :meth:`save` then persists the grown sketch.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Iterable, cast

import numpy as np

from repro.api.policy import ExecutionPolicy
from repro.core.kpt_estimation import estimate_kpt
from repro.faults import injection as faults
from repro.obs import runtime as obs
from repro.core.parameters import adjusted_ell_tim, lambda_param, theta_from_kpt
from repro.diffusion.base import resolve_model
from repro.parallel import ParallelSampler, jobs_for_engine, maybe_parallel
from repro.rrset.base import make_rr_sampler
from repro.rrset.coverage import (
    CoverageResult,
    _decrement,
    _gather_members,
    _inverted_index,
)
from repro.rrset.flat_collection import FlatRRCollection
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_k, require

__all__ = ["SketchIndex"]


class _GreedyState:
    """Resumable lazy-greedy max-coverage state (one instance per index)."""

    __slots__ = ("counts", "covered", "heap", "chosen", "seeds", "gains", "covered_total")

    def __init__(self, counts: np.ndarray[Any, Any], num_sets: int) -> None:
        self.counts = counts
        self.covered = np.zeros(num_sets, dtype=bool)
        self.heap = [(-int(counts[node]), node) for node in range(counts.size)]
        heapq.heapify(self.heap)
        self.chosen = np.zeros(counts.size, dtype=bool)
        self.seeds: list[int] = []
        self.gains: list[int] = []
        self.covered_total = 0


class SketchIndex:
    """Query service over one RR sketch: selection, spread, marginal gain.

    Parameters
    ----------
    collection:
        The sketch itself (a :class:`FlatRRCollection`); ``None`` starts an
        empty sketch over ``graph`` to be filled by ``ensure_theta`` or by
        routing a ``tim`` call through the index.
    graph:
        The sampled graph.  Optional for pure read-only querying of a loaded
        sketch, required for warm extension (sampling needs the graph) and
        for fingerprint stamping.
    model:
        Diffusion model name or instance the sketch was sampled under.
    meta:
        Provenance dictionary (see :mod:`repro.sketch.persistence`); the
        index keeps it current (``theta``, ``kpt_cache``) as the sketch
        grows and answers queries.
    jobs:
        Worker processes for warm-start sampling (``ensure_theta`` /
        ``ensure_epsilon`` and cold builds): ``0`` = all cores, ``None``
        (default) = the legacy single stream.  The pool persists on the
        index across extension waves (call :meth:`close` to release it);
        the sampled RR sets are byte-identical for every worker count, so
        a sketch grown with ``jobs=8`` equals one grown with ``jobs=1``.
    """

    def __init__(self, collection: FlatRRCollection | None = None, *,
                 graph: Any = None, model: Any = "IC",
                 meta: dict[str, Any] | None = None,
                 jobs: int | None = None) -> None:
        require(collection is not None or graph is not None,
                "SketchIndex needs a collection, a graph, or both")
        self._model = resolve_model(model)
        if collection is None:
            collection = FlatRRCollection(graph.n, graph.m)
        self.collection = collection
        self.graph = graph
        if graph is not None:
            require(graph.n == collection.num_nodes,
                    "collection node universe does not match the graph")
        self.meta = dict(meta or {})
        self.meta.setdefault("model", self._model.name)
        require(self.meta["model"] == self._model.name,
                f"sketch was sampled under model {self.meta['model']!r}, "
                f"not {self._model.name!r}")
        if graph is not None:
            self.meta.setdefault("graph_fingerprint", graph.fingerprint())
        self.meta["theta"] = len(collection)
        self._sampler: Any = None
        self._jobs = jobs
        self._inv_ptr: np.ndarray[Any, Any] | None = None
        self._inv_sets: np.ndarray[Any, Any] | None = None
        self._state: _GreedyState | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Any, model: Any = "IC", *,
              theta: int | None = None, k: int | None = None,
              epsilon: float | None = None, ell: float | None = None,
              rng: Any = None, engine: str | None = None,
              jobs: int | None = None, trace_edges: bool | None = None,
              policy: Any = None,
              algorithm: str | None = None) -> "SketchIndex":
        """Cold-build a sketch: sample θ random RR sets and index them.

        Either pass ``theta`` directly, or pass ``k`` and the sketch size is
        derived from ``algorithm`` for the given ``epsilon``/``ell``:

        * ``"tim"`` (default) — Algorithm 2's KPT* and θ = ⌈λ/KPT*⌉, making
          the sketch ε-equivalent to what a ``tim(graph, k, epsilon)`` call
          would have sampled;
        * ``"imm"`` — IMM's martingale lower-bound search
          (:func:`repro.core.imm.imm_ensure`), which typically lands on a
          substantially smaller θ for the same ε and always samples through
          the batched path regardless of ``engine``.

        ``algorithm=None`` resolves from ``policy.algorithm`` (``"imm"``
        selects the IMM derivation; every other value falls back to the TIM
        derivation, which is also what TIM+ sketches use).

        ``jobs`` shards the build across worker processes (``0`` = all
        cores); the resulting sketch — and therefore its saved file — is
        byte-identical for every worker count.  The pool stays on the index
        for warm-start extensions.

        ``trace_edges`` records each RR set's live-edge trace (IC/LT only),
        the dependency record :meth:`apply_update` uses for precise
        invalidation under graph updates.  Tracing changes neither the
        sampled sets nor the RNG stream — only the extra arrays stored.

        ``policy`` (an :class:`~repro.api.policy.ExecutionPolicy`) supplies
        defaults for ``engine``/``jobs``/``trace_edges``/``epsilon``/``ell``;
        explicit keyword arguments override it, so existing call shapes are
        unchanged.
        """
        resolved_policy = ExecutionPolicy.coerce(policy)
        engine = resolved_policy.engine if engine is None else engine
        jobs = resolved_policy.jobs if jobs is None else jobs
        trace_edges = resolved_policy.trace_edges if trace_edges is None else trace_edges
        epsilon = resolved_policy.epsilon if epsilon is None else epsilon
        ell = resolved_policy.ell if ell is None else ell
        require(engine in ("vectorized", "python"),
                f"engine must be 'vectorized' or 'python'; got {engine!r}")
        if algorithm is None:
            algorithm = "imm" if resolved_policy.algorithm == "imm" else "tim"
        require(algorithm in ("tim", "imm"),
                f"sketch derivation algorithm must be 'tim' or 'imm'; "
                f"got {algorithm!r}")
        resolved = resolve_model(model)
        resolved.validate_graph(graph)
        source = resolve_rng(rng)
        jobs = jobs_for_engine(engine, jobs)
        with obs.trace("sketch.build", model=resolved.name, algorithm=algorithm):
            faults.checkpoint("sketch.build")
            sampler, _ = maybe_parallel(
                make_rr_sampler(graph, resolved, trace_edges=trace_edges), jobs
            )
            meta: dict[str, Any] = {"rng_seed": source.seed, "engine": engine}
            if theta is None and algorithm == "imm":
                # IMM derivation: no KPT estimation phase — the lower-bound
                # search grows the (initially empty) index directly and the
                # final sketch *is* the search's reusable sample.
                from repro.core.imm import imm_ensure

                if k is None:
                    raise ValueError(
                        "build needs theta, or k to derive theta from epsilon")
                check_k(k, graph.n)
                collection = FlatRRCollection(graph.n, graph.m,
                                              track_traces=trace_edges)
                index = cls(collection, graph=graph, model=resolved,
                            meta=meta, jobs=jobs)
                index._sampler = sampler
                imm_ensure(index, k, epsilon, adjusted_ell_tim(ell, graph.n),
                           rng=source)
                index.meta.update(ell=ell, k=k)
                return index
            if theta is None:
                if k is None:
                    raise ValueError(
                        "build needs theta, or k to derive theta from epsilon")
                check_k(k, graph.n)
                ell_adjusted = adjusted_ell_tim(ell, graph.n)
                kpt_result = estimate_kpt(graph, k, sampler, ell=ell_adjusted,
                                          rng=source, policy=ExecutionPolicy(engine=engine))
                theta = theta_from_kpt(
                    lambda_param(graph.n, k, epsilon, ell_adjusted), kpt_result.kpt_star
                )
                meta.update(epsilon=epsilon, ell=ell, k=k,
                            kpt_star=kpt_result.kpt_star, algorithm="tim")
            theta = int(theta)
            require(theta >= 1, "theta must be >= 1")
            if engine == "vectorized":
                collection = sampler.sample_random_batch(theta, source)
            else:
                collection = FlatRRCollection(graph.n, graph.m, track_traces=trace_edges)
                randrange = source.py.randrange
                for _ in range(theta):
                    collection.append(sampler.sample_rooted(randrange(graph.n), source))
            index = cls(collection, graph=graph, model=resolved, meta=meta, jobs=jobs)
            index._sampler = sampler
        return index

    @classmethod
    def load(cls, path: str | os.PathLike[str], graph: Any = None,
             model: Any = None, mmap: bool = False,
             jobs: int | None = None) -> "SketchIndex":
        """Load a persisted sketch, validating it against ``graph`` if given.

        A sketch recorded for a different graph raises
        :class:`~repro.sketch.persistence.SketchGraphMismatchError` — RR
        sets only estimate spread on the exact graph they were drawn from.
        ``jobs`` configures worker processes for later warm-start sampling.
        """
        from repro.sketch.persistence import load_sketch

        expected = graph.fingerprint() if graph is not None else None
        collection, meta = load_sketch(path, mmap=mmap, expected_fingerprint=expected)
        return cls(collection, graph=graph, model=model or meta.get("model", "IC"),
                   meta=meta, jobs=jobs)

    def save(self, path: str | os.PathLike[str]) -> None:
        """Persist the (possibly grown) sketch and its current metadata."""
        payload = {
            key: value
            for key, value in self.meta.items()
            if key not in ("format_version", "num_nodes", "graph_edges", "num_sets")
        }
        self.collection.save(path, payload)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """θ — the number of RR sets currently in the sketch."""
        return len(self.collection)

    @property
    def num_nodes(self) -> int:
        return self.collection.num_nodes

    def _ensure_postings(self) -> tuple[np.ndarray[Any, Any], np.ndarray[Any, Any]]:
        if self._inv_ptr is None or self._inv_sets is None:
            self._inv_ptr, self._inv_sets = _inverted_index(
                self.collection.ptr_array, self.collection.nodes_array, self.num_nodes
            )
        return self._inv_ptr, self._inv_sets

    def invalidate(self) -> None:
        """Drop postings and selection state (call after the sketch grows)."""
        self._inv_ptr = None
        self._inv_sets = None
        self._state = None

    # ------------------------------------------------------------------
    # Growth (warm-start theta extension)
    # ------------------------------------------------------------------
    def _require_sampler(self, jobs: int | None = None) -> Any:
        require(self.graph is not None,
                "this index has no graph attached; re-load the sketch with "
                "graph=... to enable sampling")
        if jobs is not None and jobs != self._jobs:
            # Re-configure the worker count: tear down any existing pool so
            # the next batch spawns one with the requested width.  Sampled
            # bytes do not depend on the worker count, only wall-clock does.
            self.close()
            self._sampler = None
            self._jobs = jobs
        if self._sampler is None:
            # Tracing must follow the collection: extending a traced sketch
            # with untraced batches (or vice versa) is rejected downstream.
            self._sampler, _ = maybe_parallel(
                make_rr_sampler(self.graph, self._model,
                                trace_edges=self.collection.has_traces),
                self._jobs,
            )
        return self._sampler

    def close(self) -> None:
        """Shut down the warm-start sampling pool, if one is live.

        Queries keep working (they never sample); a later ``ensure_theta``
        lazily respawns the pool.
        """
        if isinstance(self._sampler, ParallelSampler):
            self._sampler.close()

    def extend_flat(self, batch: FlatRRCollection) -> None:
        """Append pre-sampled RR sets (array-level) and invalidate caches."""
        with obs.trace("sketch.extend", sets=len(batch)):
            faults.checkpoint("sketch.extend")
            self.collection.extend_flat(batch)
            self.meta["theta"] = len(self.collection)
            self.invalidate()

    def ensure_theta(self, theta: int, rng: Any = None,
                     jobs: int | None = None) -> int:
        """Grow the sketch to at least ``theta`` RR sets; returns the number added.

        The existing prefix is never resampled — random RR sets are i.i.d.,
        so appending fresh ones preserves every estimator guarantee while
        reusing all prior sampling work (the warm-start amortization that
        makes repeated tighter-ε queries cheap).  ``jobs`` (sticky: it
        becomes the index default) shards the extension across worker
        processes with worker-count-invariant bytes.
        """
        missing = int(theta) - len(self.collection)
        if missing <= 0:
            return 0
        sampler = self._require_sampler(jobs)
        batch = sampler.sample_random_batch(missing, resolve_rng(rng))
        self.extend_flat(batch)
        return missing

    def ensure_epsilon(self, k: int, epsilon: float, ell: float = 1.0,
                       rng: Any = None, jobs: int | None = None) -> int:
        """Grow the sketch until it is ε-equivalent for budget ``k``.

        Recomputes θ = ⌈λ(ε)/KPT*⌉ from the cached KPT* for *this* ``k``
        (KPT is k-dependent — Equation 8's κ uses k — so the cache is keyed
        by k; a fresh Algorithm 2 run fills a miss) and extends to it;
        returns the number of sets added.
        """
        check_k(k, self.num_nodes)
        source = resolve_rng(rng)
        ell_adjusted = adjusted_ell_tim(ell, self.num_nodes)
        kpt_by_k = self.meta.setdefault("kpt_star_by_k", {})
        if "kpt_star" in self.meta and self.meta.get("k") is not None:
            # Seed the per-k cache with the build-time estimate.
            kpt_by_k.setdefault(str(self.meta["k"]), self.meta["kpt_star"])
        kpt_star = kpt_by_k.get(str(k))
        if kpt_star is None:
            sampler = self._require_sampler(jobs)
            kpt_star = estimate_kpt(
                self.graph, k, sampler, ell=ell_adjusted, rng=source
            ).kpt_star
            kpt_by_k[str(k)] = kpt_star
        theta = theta_from_kpt(
            lambda_param(self.num_nodes, k, epsilon, ell_adjusted), kpt_star
        )
        added = self.ensure_theta(theta, rng=source, jobs=jobs)
        # The collection now meets θ(ε) whether or not sets were added — a
        # tighter-ε request already satisfied by the current θ must still
        # update the certification metadata (recording only on growth left
        # persisted sketches under-reporting what they certify).
        self.record_epsilon(epsilon)
        return added

    def record_epsilon(self, epsilon: float) -> None:
        """Record ``epsilon`` as certified if it is the tightest ε so far.

        ``meta["epsilon"]`` tracks the *tightest* ε whose θ the collection
        meets; a looser request never regresses it (the sketch still
        certifies the tighter value), and a no-op growth still updates it.
        """
        recorded = self.meta.get("epsilon")
        if recorded is None or float(epsilon) < float(recorded):
            self.meta["epsilon"] = float(epsilon)

    # ------------------------------------------------------------------
    # Incremental repair (dynamic graphs)
    # ------------------------------------------------------------------
    def apply_update(self, delta: Any, rng: Any = None,
                     jobs: int | None = None) -> Any:
        """Repair the sketch across one edge update instead of rebuilding.

        ``delta`` is the :class:`~repro.graphs.delta.GraphDelta` produced by
        a :class:`~repro.dynamic.graph.DynamicDiGraph` mutation (or the
        :mod:`repro.graphs.delta` primitives) whose *old* side is the graph
        this index currently serves.  Only the RR sets the update could have
        changed are resampled — with their original roots, through a fresh
        sampler bound to the new snapshot (sharded across ``jobs`` workers
        with ``SeedSequence.spawn`` streams, so the repaired bytes are
        worker-count invariant).  The index then rebinds to the new graph:
        fingerprint metadata moves forward, stale KPT caches drop, and the
        postings/selection state invalidates.

        Returns the :class:`~repro.dynamic.repair.RepairReport`.
        """
        from repro.dynamic.repair import repair_collection

        require(self.graph is not None,
                "this index has no graph attached; re-load the sketch with "
                "graph=... to enable repair")
        require(self._model.name in ("IC", "LT"),
                f"incremental repair supports IC and LT; the index serves "
                f"{self._model.name!r} (rebuild instead)")
        require(self.graph.fingerprint() == delta.old_fingerprint,
                "update was produced against a different graph snapshot than "
                "this index serves")
        # Build the post-update sampler *before* touching index state, so a
        # rejected update (e.g. an LT insert breaking the Σ in-weight <= 1
        # invariant) leaves the index fully serving the old snapshot.
        sampler, _ = maybe_parallel(
            make_rr_sampler(delta.new_graph, self._model,
                            trace_edges=self.collection.has_traces),
            jobs if jobs is not None else self._jobs,
        )
        with obs.trace("repair.apply_update", action=delta.op):
            faults.checkpoint("sketch.apply_update")
            repaired, report = repair_collection(
                self.collection, delta, sampler, rng=resolve_rng(rng)
            )
        obs.add("repair.sets_resampled", report.num_affected)
        if jobs is not None:
            self._jobs = jobs
        # The old pool (if any) broadcast the old graph's arrays — retire it
        # and hand the index the fresh sampler bound to the new snapshot.
        self.close()
        self._sampler = sampler
        self.graph = delta.new_graph
        self.collection = repaired
        self.meta["graph_fingerprint"] = delta.new_fingerprint
        self.meta["theta"] = len(self.collection)
        self.meta["dynamic_updates"] = int(self.meta.get("dynamic_updates", 0)) + 1
        # KPT/κ statistics were estimated on the old graph; they no longer
        # certify θ for the new one.  Drop them so the next ensure_epsilon
        # re-estimates instead of silently trusting stale numbers.
        for stale in ("kpt_cache", "kpt_star_by_k", "kpt_star"):
            self.meta.pop(stale, None)
        self.invalidate()
        return report

    # ------------------------------------------------------------------
    # KPT cache (lets a warm `tim` call skip Algorithm 2 entirely)
    # ------------------------------------------------------------------
    @staticmethod
    def _kpt_key(k: int, refine: bool) -> str:
        return f"k={int(k)}|refine={bool(refine)}"

    def cached_kpt(self, k: int, refine: bool) -> dict[str, Any] | None:
        """A previously computed ``{"kpt_star": .., "kpt_plus": ..}`` record."""
        record = self.meta.get("kpt_cache", {}).get(self._kpt_key(k, refine))
        return cast("dict[str, Any] | None", record)

    def store_kpt(self, k: int, refine: bool, record: dict[str, Any]) -> None:
        self.meta.setdefault("kpt_cache", {})[self._kpt_key(k, refine)] = dict(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(self, k: int, forced_include: Iterable[int] = (),
               forced_exclude: Iterable[int] = (),
               incremental: bool = True) -> CoverageResult:
        """Greedy max-coverage seed selection over the sketch, for any ``k``.

        Matches :func:`repro.rrset.coverage.greedy_max_coverage` seed-for-seed
        (ties resolve toward the smaller node id).  With ``incremental=True``
        (default, and only valid without constraints) the lazy-greedy state
        persists across calls, so ascending-k queries extend the previous
        answer instead of recomputing it.

        ``forced_include`` seeds are taken first (in the given order) and
        count toward ``k``; ``forced_exclude`` nodes are never selected.
        """
        with obs.trace("sketch.select", k=int(k)):
            faults.checkpoint("sketch.select")
            return self._select(k, forced_include, forced_exclude, incremental)

    def _select(self, k: int, forced_include: Iterable[int],
                forced_exclude: Iterable[int],
                incremental: bool) -> CoverageResult:
        check_k(k, self.num_nodes)
        include = [int(v) for v in forced_include]
        exclude = {int(v) for v in forced_exclude}
        if include or exclude:
            for node in include:
                require(0 <= node < self.num_nodes, f"forced seed {node} out of range")
            for node in exclude:
                require(0 <= node < self.num_nodes, f"excluded node {node} out of range")
            require(len(set(include)) == len(include), "forced_include has duplicates")
            require(not (set(include) & exclude),
                    "forced_include and forced_exclude overlap")
            require(len(include) <= k, "forced_include larger than k")
            require(self.num_nodes - len(exclude) >= k,
                    "exclusions leave fewer than k eligible nodes")
            return self._select_constrained(k, include, exclude)
        if not incremental:
            return self._run_greedy(k, _GreedyState(self._fresh_counts(), self.num_sets))
        if self._state is None:
            self._state = _GreedyState(self._fresh_counts(), self.num_sets)
        state = self._state
        if len(state.seeds) >= k:
            return CoverageResult(
                state.seeds[:k],
                int(sum(state.gains[:k])),
                self.num_sets,
                tuple(state.gains[:k]),
            )
        return self._run_greedy(k, state)

    def _fresh_counts(self) -> np.ndarray[Any, Any]:
        self._ensure_postings()
        return self.collection.node_frequency_array().astype(np.int64, copy=True)

    def _run_greedy(self, k: int, state: _GreedyState) -> CoverageResult:
        """Advance ``state`` until it holds ``k`` seeds; return the answer."""
        with obs.trace("selection.greedy", k=int(k)):
            return self._run_greedy_inner(k, state)

    def _run_greedy_inner(self, k: int, state: _GreedyState) -> CoverageResult:
        inv_ptr, inv_sets = self._ensure_postings()
        ptr = self.collection.ptr_array
        nodes = self.collection.nodes_array
        counts, covered, heap, chosen = state.counts, state.covered, state.heap, state.chosen
        while len(state.seeds) < k and heap:
            negative_count, node = heapq.heappop(heap)
            if chosen[node]:
                continue
            current = int(counts[node])
            if -negative_count != current:
                heapq.heappush(heap, (-current, node))
                continue
            state.seeds.append(node)
            chosen[node] = True
            state.gains.append(current)
            state.covered_total += current
            candidate_sets = inv_sets[inv_ptr[node] : inv_ptr[node + 1]]
            new_sets = candidate_sets[~covered[candidate_sets]]
            if new_sets.size:
                covered[new_sets] = True
                _decrement(counts, _gather_members(ptr, nodes, new_sets), self.num_nodes)
        if len(state.seeds) < k:
            fill = np.flatnonzero(~chosen)[: k - len(state.seeds)]
            for v in fill:
                state.seeds.append(int(v))
                state.gains.append(0)
                chosen[v] = True
        return CoverageResult(
            list(state.seeds), state.covered_total, self.num_sets, tuple(state.gains)
        )

    def _select_constrained(self, k: int, include: list[int], exclude: set[int]) -> CoverageResult:
        """One-shot greedy honouring forced include/exclude constraints."""
        inv_ptr, inv_sets = self._ensure_postings()
        ptr = self.collection.ptr_array
        nodes = self.collection.nodes_array
        counts = self._fresh_counts()
        covered = np.zeros(self.num_sets, dtype=bool)
        chosen = np.zeros(self.num_nodes, dtype=bool)
        seeds: list[int] = []
        gains: list[int] = []
        total = 0

        def take(node: int) -> None:
            nonlocal total
            gain = int(counts[node])
            seeds.append(node)
            gains.append(gain)
            total += gain
            chosen[node] = True
            candidate_sets = inv_sets[inv_ptr[node] : inv_ptr[node + 1]]
            new_sets = candidate_sets[~covered[candidate_sets]]
            if new_sets.size:
                covered[new_sets] = True
                _decrement(counts, _gather_members(ptr, nodes, new_sets), self.num_nodes)

        for node in include:
            take(node)
        if exclude:
            chosen[list(exclude)] = True  # never eligible
        heap = [
            (-int(counts[node]), node)
            for node in range(self.num_nodes)
            if not chosen[node]
        ]
        heapq.heapify(heap)
        while len(seeds) < k and heap:
            negative_count, node = heapq.heappop(heap)
            if chosen[node]:
                continue
            current = int(counts[node])
            if -negative_count != current:
                heapq.heappush(heap, (-current, node))
                continue
            take(node)
        if len(seeds) < k:
            eligible = ~chosen
            fill = np.flatnonzero(eligible)[: k - len(seeds)]
            for v in fill:
                seeds.append(int(v))
                gains.append(0)
        return CoverageResult(seeds, total, self.num_sets, tuple(gains))

    def coverage_count(self, seeds: Iterable[int]) -> int:
        """Number of RR sets covered by ``seeds`` (postings-list union)."""
        inv_ptr, inv_sets = self._ensure_postings()
        mask = np.zeros(self.num_sets, dtype=bool)
        for v in seeds:
            v = int(v)
            require(0 <= v < self.num_nodes, f"seed {v} out of range")
            mask[inv_sets[inv_ptr[v] : inv_ptr[v + 1]]] = True
        return int(np.count_nonzero(mask))

    def coverage_fraction(self, seeds: Iterable[int]) -> float:
        """``F_R(S)`` over the sketch."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage_count(seeds) / self.num_sets

    def spread(self, seeds: Iterable[int]) -> float:
        """``n · F_R(S)`` — the Corollary 1 spread estimate, no resampling."""
        return self.num_nodes * self.coverage_fraction(seeds)

    def marginal_gain(self, seeds: Iterable[int], candidate: int) -> float:
        """Estimated spread increase from adding ``candidate`` to ``seeds``."""
        inv_ptr, inv_sets = self._ensure_postings()
        candidate = int(candidate)
        require(0 <= candidate < self.num_nodes, f"candidate {candidate} out of range")
        if self.num_sets == 0:
            return 0.0
        mask = np.zeros(self.num_sets, dtype=bool)
        for v in seeds:
            v = int(v)
            require(0 <= v < self.num_nodes, f"seed {v} out of range")
            mask[inv_sets[inv_ptr[v] : inv_ptr[v + 1]]] = True
        postings = inv_sets[inv_ptr[candidate] : inv_ptr[candidate + 1]]
        gain = int(np.count_nonzero(~mask[postings]))
        return self.num_nodes * gain / self.num_sets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SketchIndex(num_sets={self.num_sets}, num_nodes={self.num_nodes}, "
            f"model={self._model.name!r})"
        )
