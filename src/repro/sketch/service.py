"""`InfluenceService` — an in-process influence-query server over sketches.

The service front of :mod:`repro.sketch`: it keeps an LRU cache of
:class:`~repro.sketch.index.SketchIndex` objects keyed by
``(graph fingerprint, model name)``, builds an index on first touch
(cold miss) and serves every later query from the cached sketch (warm hit).
This is the "build a sketch once, answer millions of queries" shape the
ROADMAP's serving north-star asks for, mirrored in miniature: the
``repro-im serve`` CLI wraps one service instance around a JSONL request
stream and reports per-query latency plus hit/miss statistics.

Request format (one JSON object per line)::

    {"op": "select", "k": 10}
    {"op": "select", "k": 10, "include": [3], "exclude": [7]}
    {"op": "spread", "seeds": [3, 17, 42]}
    {"op": "marginal_gain", "seeds": [3, 17], "candidate": 42}
    {"op": "update", "action": "insert", "u": 3, "v": 7, "p": 0.2}
    {"op": "update", "action": "delete", "u": 3, "v": 7}
    {"op": "update", "action": "reweight", "u": 3, "v": 7, "p": 0.05}
    {"op": "stats"}

``update`` requires the service to be driven with a
:class:`~repro.dynamic.graph.DynamicDiGraph` (the CLI's ``serve`` wraps the
loaded graph in one): the edge mutation lands on the dynamic graph and every
cached index for the pre-update snapshot is *repaired in place* — only the
affected RR sets resampled — then re-keyed under the new fingerprint, so
the stale key vacates the cache atomically instead of lingering until LRU
pressure evicts it.

Responses echo ``op`` (and ``id`` when the request carries one) and add
``result``, ``latency_ms``, ``cache`` (``"hit"``/``"miss"``) and
``schema_version``.  Failures come back as structured payloads —
``{"ok": false, "error": {"code": ..., "message": ..., "retryable": ...}}``
— instead of raising, so one bad request cannot take down a batch; unknown
request fields are rejected (``unknown_field``) rather than silently
ignored.  Idempotent requests get one deterministic retry of transient
failures (``update`` never replays), and a request carrying ``deadline_ms``
(or a service-level default) that blows its budget returns a structured
``deadline_exceeded`` error rather than hanging the loop.

The protocol itself lives in :mod:`repro.api.ops`: :meth:`execute` is the
typed front (``SelectRequest`` in, ``SelectResponse`` out) and is what
``run_batch`` and the CLI speak; the dict-in/dict-out :meth:`query` is a
deprecated shim over it with byte-identical payloads.
"""

from __future__ import annotations

import json
import warnings
from collections import OrderedDict
from typing import Any, Iterable

from repro.api.ops import (
    ApiError,
    ErrorResponse,
    MarginalRequest,
    MarginalResponse,
    Request,
    Response,
    SelectRequest,
    SelectResponse,
    SpreadRequest,
    SpreadResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    parse_request,
)
from repro.api.policy import ExecutionPolicy
from repro.diffusion.base import resolve_model
from repro.faults import injection as faults
from repro.faults.errors import DeadlineExceeded, ReproError
from repro.faults.retry import RetryPolicy, call_with_retry
from repro.obs import runtime as obs
from repro.obs.registry import LATENCY_MS_BUCKETS, MetricsRegistry
from repro.sketch.index import SketchIndex
from repro.utils.rng import resolve_rng
from repro.utils.validation import require

__all__ = ["InfluenceService", "ServiceStats"]

#: The counters a ServiceStats carries, in wire order.  Error latency is
#: tracked separately from total latency so the success-only mean cannot be
#: polluted by cheap fast-fail requests (the historical ``mean_latency_ms``
#: keeps averaging over *all* queries, byte-identical to older releases).
_COUNTER_FIELDS = (
    "queries",
    "errors",
    "cache_hits",
    "cache_misses",
    "evictions",
    "builds",
    "repairs",
    "retries",
    "sets_resampled",
    "total_latency_seconds",
    "error_latency_seconds",
)


class ServiceStats:
    """Aggregate counters the service maintains across queries.

    Backed by a private :class:`~repro.obs.registry.MetricsRegistry`
    (always on — the registry is just storage; the process-global tracing
    switch only governs *span* recording), while keeping the historical
    attribute surface: ``stats.queries``, ``stats.cache_hits += 1`` and
    friends read and write the underlying counters directly.

    ``as_dict()`` keeps every historical key byte-identical — including
    ``mean_latency_ms``/``queries_per_second`` averaging over all requests,
    errors included — and appends additive fields: the error/success
    latency split and interpolated p50/p90/p99 request latency from a
    fixed-bucket histogram (deterministic; no reservoir sampling).
    """

    def __init__(self) -> None:
        registry = MetricsRegistry()
        # _counters must exist before any attribute write routes through
        # __setattr__.
        self.__dict__["_counters"] = {
            name: registry.counter("service." + name) for name in _COUNTER_FIELDS
        }
        self.__dict__["registry"] = registry
        self.__dict__["latency"] = registry.histogram(
            "service.request_latency_ms", LATENCY_MS_BUCKETS)
        self.__dict__["per_op"] = {}
        # Latency accumulators are seconds, so they surface as floats even
        # before the first request lands.
        self._counters["total_latency_seconds"].value = 0.0
        self._counters["error_latency_seconds"].value = 0.0

    def __getattr__(self, name: str) -> Any:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].value = value
        else:
            self.__dict__[name] = value

    def record_latency(self, seconds: float, *, error: bool) -> None:
        """Fold one request's wall-clock into every latency aggregate."""
        self.total_latency_seconds += seconds
        if error:
            self.error_latency_seconds += seconds
        self.latency.observe(1000.0 * seconds)
        # Mirror into the process-global registry (no-op when metrics are
        # off) so --metrics-out exports carry request latency alongside
        # the span histograms.
        obs.observe("service.request_latency_ms", 1000.0 * seconds,
                    bounds=LATENCY_MS_BUCKETS)

    @property
    def mean_latency_ms(self) -> float:
        if self.queries == 0:
            return 0.0
        return float(1000.0 * self.total_latency_seconds / self.queries)

    @property
    def queries_per_second(self) -> float:
        if self.total_latency_seconds <= 0.0:
            return 0.0
        return float(self.queries / self.total_latency_seconds)

    @property
    def success_mean_latency_ms(self) -> float:
        """Mean latency over successful requests only (errors excluded)."""
        successes = self.queries - self.errors
        if successes <= 0:
            return 0.0
        seconds = self.total_latency_seconds - self.error_latency_seconds
        return float(1000.0 * seconds / successes)

    def as_dict(self) -> dict[str, Any]:
        return {
            "queries": self.queries,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "evictions": self.evictions,
            "builds": self.builds,
            "repairs": self.repairs,
            "retries": self.retries,
            "sets_resampled": self.sets_resampled,
            "mean_latency_ms": self.mean_latency_ms,
            "queries_per_second": self.queries_per_second,
            "per_op": dict(self.per_op),
            # Additive fields (schema_version stays 1): the error/success
            # latency split plus deterministic interpolated percentiles.
            "error_latency_seconds": self.error_latency_seconds,
            "success_mean_latency_ms": self.success_mean_latency_ms,
            "latency_p50_ms": self.latency.percentile(0.50),
            "latency_p90_ms": self.latency.percentile(0.90),
            "latency_p99_ms": self.latency.percentile(0.99),
        }


class InfluenceService:
    """LRU of sketch indexes plus a uniform query front.

    Parameters
    ----------
    max_indexes:
        Capacity of the LRU; the least-recently-used index is evicted when a
        build would exceed it.
    default_k, epsilon, ell, engine:
        Build parameters for cold misses (θ derived the TIM way from
        ``epsilon`` at budget ``default_k``); ``theta`` overrides the
        derivation with a fixed sketch size.
    jobs:
        Worker processes for cold builds and warm-start extensions
        (``0`` = all cores, ``None`` = single stream).  Sketch bytes are
        worker-count invariant, so the cache key needs no ``jobs`` term.
    trace_edges:
        Build cold indexes with live-edge traces so ``update`` requests
        invalidate precisely (IC/LT).  Untraced indexes still repair, but
        with the coarser membership-based invalidation.
    policy:
        An :class:`~repro.api.policy.ExecutionPolicy` supplying defaults
        for ``engine``/``jobs``/``trace_edges``/``epsilon``/``ell`` in one
        validated object; the explicit keyword arguments above override
        its fields.  Without a policy, ``epsilon`` keeps the service's
        historical ``0.3`` default (coarser than the library-wide ``0.1``
        because a serving sketch trades tightness for build time).
    rng:
        Seed/source for cold builds, so a service run is reproducible.
    deadline_ms:
        Default per-request wall-clock budget; a request over budget comes
        back as a structured ``deadline_exceeded`` error instead of hanging
        the JSONL loop.  ``None`` (default) means no budget; a request's
        own ``deadline_ms`` field overrides the service default.  Falls
        back to ``policy.deadline_ms`` when a policy supplies one.
    memory_budget_bytes:
        Soft cap on the summed ``nbytes`` of cached sketches; before a cold
        build (and after any insert) least-recently-used indexes are
        evicted until the resident set fits, keeping at least one index.
    retry:
        :class:`~repro.faults.retry.RetryPolicy` for idempotent request
        dispatch (default: one deterministic retry of transient failures;
        ``update`` requests are never replayed — graph mutation is not
        idempotent).
    """

    #: One free redo of an idempotent query whose transient cause (crashed
    #: pool, injected chaos fault, post-eviction MemoryError) may have
    #: cleared; milliseconds-scale backoff so batches never stall visibly.
    DEFAULT_DISPATCH_RETRY = RetryPolicy(max_attempts=2, base_delay_ms=1.0,
                                         max_delay_ms=10.0)

    def __init__(self, max_indexes: int = 4, *, default_k: int = 10,
                 epsilon: float | None = None, ell: float | None = None,
                 theta: int | None = None,
                 engine: str | None = None, jobs: int | None = None,
                 trace_edges: bool | None = None,
                 policy: ExecutionPolicy | None = None, rng: Any = None,
                 deadline_ms: float | None = None,
                 memory_budget_bytes: int | None = None,
                 retry: RetryPolicy | None = None) -> None:
        require(max_indexes >= 1, "max_indexes must be >= 1")
        resolved = ExecutionPolicy.coerce(policy)
        self.max_indexes = int(max_indexes)
        self.default_k = int(default_k)
        if epsilon is None:
            epsilon = resolved.epsilon if policy is not None else 0.3
        self.epsilon = float(epsilon)
        self.ell = float(resolved.ell if ell is None else ell)
        self.theta = theta
        self.engine = resolved.engine if engine is None else engine
        self.jobs = resolved.jobs if jobs is None else jobs
        self.trace_edges = bool(resolved.trace_edges if trace_edges is None else trace_edges)
        if deadline_ms is None:
            deadline_ms = resolved.deadline_ms
        require(deadline_ms is None or deadline_ms > 0,
                f"deadline_ms must be > 0; got {deadline_ms!r}")
        self.deadline_ms = None if deadline_ms is None else float(deadline_ms)
        require(memory_budget_bytes is None or memory_budget_bytes > 0,
                f"memory_budget_bytes must be > 0; got {memory_budget_bytes!r}")
        self.memory_budget_bytes = memory_budget_bytes
        self._retry = retry if retry is not None else self.DEFAULT_DISPATCH_RETRY
        self._rng = resolve_rng(rng)
        self._indexes: "OrderedDict[tuple[str, str], SketchIndex]" = OrderedDict()
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Index cache
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_graph(graph: Any) -> Any:
        """Accept either a plain snapshot or a dynamic overlay."""
        current = getattr(graph, "graph", None)
        return current if current is not None else graph

    @classmethod
    def _key(cls, graph: Any, model: Any) -> tuple[str, str]:
        return (cls._resolve_graph(graph).fingerprint(), resolve_model(model).name)

    def add_index(self, index: SketchIndex, graph: Any = None) -> tuple[str, str]:
        """Register a pre-built/loaded index (e.g. from a sketch file)."""
        graph = graph if graph is not None else index.graph
        fingerprint = index.meta.get("graph_fingerprint")
        if fingerprint is None:
            require(graph is not None, "index carries no fingerprint and no graph")
            fingerprint = graph.fingerprint()
        key = (fingerprint, index.meta["model"])
        self._indexes[key] = index
        self._indexes.move_to_end(key)
        self._evict()
        return key

    def get_index(self, graph: Any, model: Any = "IC") -> tuple[SketchIndex, bool]:
        """Return ``(index, was_cached)`` for the graph/model, building on miss."""
        key = self._key(graph, model)
        cached = self._indexes.get(key)
        if cached is not None:
            self._indexes.move_to_end(key)
            self.stats.cache_hits += 1
            return cached, True
        self.stats.cache_misses += 1
        self.stats.builds += 1
        if self.memory_budget_bytes is not None:
            # Free headroom *before* the build allocates a graph-sized
            # sketch, not after the allocation already spiked.
            doomed: list[SketchIndex] = []
            self._enforce_memory_budget(doomed)
            self._close_all(doomed)
        index = SketchIndex.build(
            self._resolve_graph(graph),
            model,
            theta=self.theta,
            k=None if self.theta is not None else self.default_k,
            epsilon=self.epsilon,
            ell=self.ell,
            rng=self._rng.spawn(),
            engine=self.engine,
            jobs=self.jobs,
            trace_edges=self.trace_edges,
        )
        self._indexes[key] = index
        self._evict()
        return index, False

    @staticmethod
    def _close_all(indexes: list[SketchIndex]) -> None:
        """Close every index; the *first* failure re-raises after all run.

        One index whose pool teardown blows up must not leak the worker
        pools and shared-memory segments of the indexes behind it.
        """
        failure: BaseException | None = None
        for index in indexes:
            try:
                index.close()
            except Exception as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    def _evict(self) -> None:
        doomed: list[SketchIndex] = []
        while len(self._indexes) > self.max_indexes:
            _, evicted = self._indexes.popitem(last=False)
            doomed.append(evicted)
            self.stats.evictions += 1
        self._enforce_memory_budget(doomed)
        # Pools and SHM segments are released only after *every* victim has
        # left the cache, so one failing close() cannot strand the rest.
        self._close_all(doomed)

    def memory_bytes(self) -> int:
        """Exact resident bytes of all cached sketch payloads."""
        return sum(index.collection.nbytes() for index in self._indexes.values())

    def _enforce_memory_budget(self, doomed: list[SketchIndex]) -> None:
        """Pop LRU indexes into ``doomed`` until the resident set fits."""
        if self.memory_budget_bytes is not None:
            while (len(self._indexes) > 1
                   and self.memory_bytes() > self.memory_budget_bytes):
                _, evicted = self._indexes.popitem(last=False)
                doomed.append(evicted)
                self.stats.evictions += 1
                obs.degraded("memory_evicted")
        obs.gauge_set("service.memory_bytes", float(self.memory_bytes()))

    def close(self) -> None:
        """Shut down every cached index's sampling pool (queries still work)."""
        self._close_all(list(self._indexes.values()))

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def apply_update(self, dynamic: Any, update: Any) -> dict[str, Any]:
        """Apply one edge update and repair every cached index it staled.

        ``dynamic`` must be a :class:`~repro.dynamic.graph.DynamicDiGraph`;
        ``update`` an :class:`~repro.dynamic.updates.EdgeUpdate` or its
        request-dict form.  The update is *previewed* first: the post-update
        snapshot is validated against every cached model before anything
        mutates, so a rejected update (missing edge, LT weight-sum
        violation, ...) leaves the dynamic graph, the cache, and every
        index — pools included — exactly as they were.  On success each
        cached index keyed by the pre-update fingerprint (one per model) is
        repaired and re-keyed under the new fingerprint — the stale key
        leaves the cache in the same step, so no query can ever hit an
        index whose fingerprint no longer matches the graph.  Models
        without a cached index cost nothing now and cold-build on their
        next query, as usual.
        """
        from repro.dynamic.graph import DynamicDiGraph
        from repro.dynamic.updates import EdgeUpdate, parse_update

        require(isinstance(dynamic, DynamicDiGraph),
                "updates need a DynamicDiGraph (got a plain graph; wrap it "
                "in repro.dynamic.DynamicDiGraph to enable mutation)")
        if isinstance(update, UpdateRequest):
            update = update.to_edge_update()
        elif not isinstance(update, EdgeUpdate):
            update = parse_update(update)
        delta = dynamic.preview(update)
        keys = [k for k in self._indexes if k[0] == delta.old_fingerprint]
        for _, model_name in keys:
            # Fail the whole op before any index is touched if the new
            # snapshot is invalid for a cached model.
            resolve_model(model_name).validate_graph(delta.new_graph)
        repaired: list[dict[str, Any]] = []
        for key in keys:
            index = self._indexes[key]
            report = index.apply_update(delta, rng=self._rng.spawn())
            # Only re-key once the repair has succeeded; a raise above
            # leaves the index cached (and closeable) under its old key.
            del self._indexes[key]
            new_key = (delta.new_fingerprint, key[1])
            self._indexes[new_key] = index
            self._indexes.move_to_end(new_key)
            self.stats.repairs += 1
            self.stats.sets_resampled += report.num_affected
            repaired.append(report.as_dict())
        dynamic.commit(delta)
        return {
            "action": update.action,
            "u": update.u,
            "v": update.v,
            "version": dynamic.version,
            "fingerprint": delta.new_fingerprint,
            "num_edges": dynamic.m,
            "repaired_indexes": repaired,
        }

    def __len__(self) -> int:
        return len(self._indexes)

    def cached_keys(self) -> list[tuple[str, str]]:
        return list(self._indexes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _dispatch(self, graph: Any, request: Request, model: Any) -> Response:
        """Route one *typed* request to its handler; may raise."""
        if isinstance(request, StatsRequest):
            payload = self.stats.as_dict()
            # Additive per-phase rollup from the global tracer: empty when
            # metrics are off, {"kpt": {"seconds": ..., "count": ...}, ...}
            # when REPRO_METRICS/--metrics-out enabled span recording.
            payload["phases"] = obs.phase_breakdown()
            return StatsResponse(stats=payload, cache="n/a")
        if isinstance(request, UpdateRequest):
            report = self.apply_update(graph, request)
            return UpdateResponse(cache="n/a", **report)
        resolved_model = getattr(request, "model", None) or model or "IC"
        index, was_cached = self.get_index(graph, resolved_model)
        cache = "hit" if was_cached else "miss"
        if isinstance(request, SelectRequest):
            result = index.select(
                request.k,
                forced_include=request.include,
                forced_exclude=request.exclude,
            )
            return SelectResponse(
                seeds=result.seeds,
                coverage_fraction=result.fraction,
                estimated_spread=index.num_nodes * result.fraction,
                num_rr_sets=index.num_sets,
                cache=cache,
            )
        if isinstance(request, SpreadRequest):
            return SpreadResponse(
                spread=index.spread(request.seeds),
                coverage_fraction=index.coverage_fraction(request.seeds),
                num_rr_sets=index.num_sets,
                cache=cache,
            )
        if isinstance(request, MarginalRequest):
            return MarginalResponse(
                gain=index.marginal_gain(request.seeds, request.candidate),
                num_rr_sets=index.num_sets,
                cache=cache,
            )
        raise ApiError("unknown_op",  # pragma: no cover - parse_request exhausts ops
                       f"unhandled request type {type(request).__name__}")

    def _dispatch_retrying(self, graph: Any, request: Request,
                           model: Any) -> Response:
        """Dispatch with the service retry policy (idempotent ops only)."""

        def attempt() -> Response:
            faults.checkpoint("serve.dispatch")
            return self._dispatch(graph, request, model)

        if isinstance(request, UpdateRequest):
            # Graph mutation is not idempotent: a replay after a partial
            # failure could double-apply.  One attempt, structured error.
            return attempt()

        def note_retry(attempt_number: int, exc: BaseException) -> None:
            self.stats.retries += 1
            obs.add("serve.retries")

        return call_with_retry(attempt, policy=self._retry, on_retry=note_retry)

    def execute(self, graph: Any, request: Any, model: Any = None) -> Response:
        """Answer one typed request (or wire dict); never raises on bad input.

        The single protocol front: :class:`~repro.api.ops.Request` in,
        :class:`~repro.api.ops.Response` out, with latency and hit/miss
        bookkeeping.  ``model`` on the request overrides the call-level
        default, which overrides ``"IC"``.  Failures — protocol errors and
        domain rejections alike — come back as
        :class:`~repro.api.ops.ErrorResponse` with a stable ``code``.
        """
        started = obs.now()
        op: str | None = None
        request_id: object = None
        response: Response | None = None
        if isinstance(request, dict):
            # Best-effort envelope echo even when parsing fails.
            op = request.get("op") if isinstance(request.get("op"), str) else None
            request_id = request.get("id")
        try:
            with obs.trace("serve.request"):
                typed = parse_request(request)
                op, request_id = typed.op, typed.id
                budget = (typed.deadline_ms if typed.deadline_ms is not None
                          else self.deadline_ms)
                with faults.deadline_scope(budget):
                    response = self._dispatch_retrying(graph, typed, model)
                response.id = request_id
        except DeadlineExceeded as exc:
            obs.add("serve.deadline_exceeded")
            response = ErrorResponse.from_exception(exc, op=op, id=request_id)
            self.stats.errors += 1
        except (ApiError, ReproError, MemoryError,
                ValueError, KeyError, TypeError) as exc:
            response = ErrorResponse.from_exception(exc, op=op, id=request_id)
            self.stats.errors += 1
        finally:
            elapsed = obs.now() - started
            if response is not None:
                response.latency_ms = 1000.0 * elapsed
            self.stats.queries += 1
            self.stats.record_latency(
                elapsed, error=isinstance(response, ErrorResponse))
            op_name = op or "<missing>"
            self.stats.per_op[op_name] = self.stats.per_op.get(op_name, 0) + 1
        return response

    def query(self, graph: Any, request: dict[str, Any],
              model: Any = None) -> dict[str, Any]:
        """Deprecated dict front: parse → :meth:`execute` → wire dict.

        Kept for backward compatibility; the payload is byte-identical to
        ``execute(graph, request, model).to_wire()`` (it *is* that call).
        """
        warnings.warn(
            "InfluenceService.query(dict) is deprecated; use "
            "execute(graph, SelectRequest(k=...)) (repro.api.ops) for typed "
            "calls, or run_batch for JSONL streams. Payloads are identical.",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(graph, request, model=model).to_wire()

    def run_batch(self, graph: Any, lines: Iterable[str],
                  model: Any = None) -> list[dict[str, Any]]:
        """Answer a JSONL request stream; blank lines and ``#`` comments skip."""
        responses: list[dict[str, Any]] = []
        for line_number, line in enumerate(lines, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                request = json.loads(text)
            except json.JSONDecodeError as exc:
                self.stats.queries += 1
                self.stats.errors += 1
                responses.append(ErrorResponse(
                    code="invalid_json",
                    message=f"invalid JSON: {exc}",
                    line=line_number,
                ).to_wire())
                continue
            responses.append(self.execute(graph, request, model=model).to_wire())
        return responses
