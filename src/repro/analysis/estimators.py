"""Estimators for the paper's latent quantities: EPT, KPT, and V*.

These make Lemmas 4 and 5 executable:

* Lemma 4 — ``(n/m) · EPT = E[I({v*})]`` where ``v*`` is drawn from the
  in-degree-weighted distribution V*;
* Lemma 5 — ``KPT = n · E[κ(R)]``.

The library's algorithms don't need these directly (Algorithm 2 folds the
estimation into its adaptive loop); they exist for validation, diagnostics,
and the EXPERIMENTS.md sanity tables.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.rrset.base import RRSampler
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int, require

__all__ = [
    "sample_indegree_weighted_node",
    "sample_indegree_weighted_set",
    "estimate_ept",
    "estimate_kpt_by_definition",
    "estimate_kpt_by_kappa",
]


def sample_indegree_weighted_node(graph: DiGraph, rng=None) -> int:
    """One draw from V*: pick a uniform edge, return its destination."""
    require(graph.m > 0, "V* is undefined on an edgeless graph")
    source = resolve_rng(rng)
    return int(graph.dst[source.randrange(graph.m)])


def sample_indegree_weighted_set(graph: DiGraph, k: int, rng=None) -> list[int]:
    """k draws from V* with duplicates removed (the paper's S*)."""
    check_positive_int(k, "k")
    source = resolve_rng(rng)
    seen: list[int] = []
    for _ in range(k):
        node = sample_indegree_weighted_node(graph, source)
        if node not in seen:
            seen.append(node)
    return seen


def estimate_ept(sampler: RRSampler, num_samples: int, rng=None) -> float:
    """EPT — the expected width of a random RR set — by direct averaging."""
    check_positive_int(num_samples, "num_samples")
    source = resolve_rng(rng)
    total = 0
    for _ in range(num_samples):
        total += sampler.sample(source).width
    return total / num_samples


def estimate_kpt_by_definition(
    graph: DiGraph, k: int, model="IC", num_outer: int = 200, num_inner: int = 50, rng=None
) -> float:
    """KPT straight from its definition: E over S* ~ (V*)^k of E[I(S*)].

    Two-level Monte Carlo (outer: seed sets; inner: propagation runs) —
    expensive and only used to validate Lemma 5's cheap estimator.
    """
    check_positive_int(num_outer, "num_outer")
    check_positive_int(num_inner, "num_inner")
    resolved = resolve_model(model)
    resolved.validate_graph(graph)
    source = resolve_rng(rng)
    total = 0.0
    for _ in range(num_outer):
        seed_set = sample_indegree_weighted_set(graph, k, source)
        for _ in range(num_inner):
            total += len(resolved.simulate(graph, seed_set, source))
    return total / (num_outer * num_inner)


def estimate_kpt_by_kappa(
    graph: DiGraph, k: int, sampler: RRSampler, num_samples: int = 2000, rng=None
) -> float:
    """KPT via Lemma 5: ``n · mean(κ(R))`` over random RR sets."""
    check_positive_int(num_samples, "num_samples")
    require(graph.m > 0, "kappa is undefined on an edgeless graph")
    source = resolve_rng(rng)
    m = graph.m
    kappas = np.empty(num_samples)
    for i in range(num_samples):
        width = sampler.sample(source).width
        kappas[i] = 1.0 - (1.0 - width / m) ** k
    return graph.n * float(kappas.mean())
