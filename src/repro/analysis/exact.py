"""Exact influence computations by world enumeration — test oracles.

Both IC and LT admit a *live-edge* representation: a random world ``g`` is
drawn (per-edge coins for IC, per-node parent choices for LT) and the spread
of ``S`` is the expected number of nodes reachable from ``S`` in ``g``.
For tiny graphs we can enumerate every world with its probability and
compute ``E[I(S)]`` *exactly* — the ground truth behind the statistical
tests of Lemma 2, Corollary 1 and the approximation-ratio checks.

Costs are exponential by design; the guards keep accidental misuse loud.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations, product

from repro.graphs.digraph import DiGraph
from repro.utils.validation import require

__all__ = [
    "exact_spread_ic",
    "exact_spread_lt",
    "exact_activation_probability_ic",
    "brute_force_opt",
    "enumerate_ic_worlds",
]

_MAX_RANDOM_EDGES = 18
_MAX_LT_WORLDS = 300_000


def _reachable(live_out: list[list[int]], seeds, max_steps: int | None = None) -> set[int]:
    visited = set(seeds)
    queue = deque((node, 0) for node in visited)
    while queue:
        current, depth = queue.popleft()
        if max_steps is not None and depth >= max_steps:
            continue
        for target in live_out[current]:
            if target not in visited:
                visited.add(target)
                queue.append((target, depth + 1))
    return visited


def enumerate_ic_worlds(graph: DiGraph):
    """Yield ``(probability, live_out_adjacency)`` over all IC worlds.

    Edges with ``p = 1`` are always live and ``p = 0`` never, so only the
    strictly-random edges are enumerated (capped at 2^18 worlds).
    """
    certain: list[tuple[int, int]] = []
    random_edges: list[tuple[int, int, float]] = []
    for u, v, p in graph.edges():
        if p >= 1.0:
            certain.append((u, v))
        elif p > 0.0:
            random_edges.append((u, v, p))
    require(
        len(random_edges) <= _MAX_RANDOM_EDGES,
        f"too many random edges for exact enumeration ({len(random_edges)} > {_MAX_RANDOM_EDGES})",
    )
    count = len(random_edges)
    for mask in range(2**count):
        probability = 1.0
        live_out: list[list[int]] = [[] for _ in range(graph.n)]
        for u, v in certain:
            live_out[u].append(v)
        for index, (u, v, p) in enumerate(random_edges):
            if mask >> index & 1:
                probability *= p
                live_out[u].append(v)
            else:
                probability *= 1.0 - p
        yield probability, live_out


def exact_spread_ic(graph: DiGraph, seeds, max_steps: int | None = None) -> float:
    """Exact ``E[I(S)]`` under IC by enumerating live-edge worlds.

    ``max_steps`` computes the time-critical variant: only nodes within
    ``max_steps`` live-path hops of the seeds count (Chen et al. [4]).
    """
    seed_list = [int(s) for s in seeds]
    total = 0.0
    for probability, live_out in enumerate_ic_worlds(graph):
        if probability == 0.0:
            continue
        total += probability * len(_reachable(live_out, seed_list, max_steps))
    return total


def exact_activation_probability_ic(
    graph: DiGraph, seeds, target: int, max_steps: int | None = None
) -> float:
    """Exact probability that ``seeds`` activate ``target`` under IC.

    Lemma 2's ρ₂; tests compare it with the RR-side ρ₁ (the probability a
    random RR set rooted at ``target`` intersects the seeds).  ``max_steps``
    gives the bounded-horizon variant.
    """
    seed_list = [int(s) for s in seeds]
    target = int(target)
    total = 0.0
    for probability, live_out in enumerate_ic_worlds(graph):
        if probability == 0.0:
            continue
        if target in _reachable(live_out, seed_list, max_steps):
            total += probability
    return total


def exact_spread_lt(graph: DiGraph, seeds) -> float:
    """Exact ``E[I(S)]`` under LT by enumerating per-node parent choices.

    Each node independently keeps one in-edge (probability = its weight) or
    none (the leftover mass); the spread is the reachability expectation
    over the product distribution.
    """
    in_adj, in_weights = graph.in_adjacency()
    world_count = 1
    for v in range(graph.n):
        world_count *= len(in_adj[v]) + 1
        require(
            world_count <= _MAX_LT_WORLDS,
            f"too many LT worlds for exact enumeration (> {_MAX_LT_WORLDS})",
        )
    seed_list = [int(s) for s in seeds]
    choice_space = [range(len(in_adj[v]) + 1) for v in range(graph.n)]
    total = 0.0
    for choices in product(*choice_space):
        probability = 1.0
        live_out: list[list[int]] = [[] for _ in range(graph.n)]
        for v, choice in enumerate(choices):
            weights = in_weights[v]
            if choice < len(weights):
                probability *= weights[choice]
                live_out[in_adj[v][choice]].append(v)
            else:
                probability *= max(0.0, 1.0 - sum(weights))
        if probability == 0.0:
            continue
        total += probability * len(_reachable(live_out, seed_list))
    return total


def brute_force_opt(graph: DiGraph, k: int, model: str = "IC") -> tuple[list[int], float]:
    """Exact OPT: the best size-k seed set and its exact expected spread."""
    require(1 <= k <= graph.n, "need 1 <= k <= n")
    exact = exact_spread_ic if model.upper() == "IC" else exact_spread_lt
    best_seeds: tuple[int, ...] = tuple(range(k))
    best_spread = -1.0
    for candidate in combinations(range(graph.n), k):
        spread = exact(graph, candidate)
        if spread > best_spread:
            best_spread = spread
            best_seeds = candidate
    return list(best_seeds), best_spread
