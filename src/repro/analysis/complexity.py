"""Asymptotic cost models from Section 5 ("Theoretical Comparisons").

Evaluating the big-O expressions (constants dropped) lets the theory bench
plot the *predicted* cost ratios between TIM/TIM+, RIS and Greedy alongside
the measured ones — who wins and by how many orders of magnitude is the
paper's Section 5 takeaway.
"""

from __future__ import annotations

import math

from repro.utils.validation import require

__all__ = [
    "tim_time_bound",
    "ris_time_bound",
    "greedy_time_bound",
    "borgs_lower_bound",
]


def _check(n: int, m: int, k: int) -> None:
    require(n >= 2, "need n >= 2")
    require(m >= 0, "need m >= 0")
    require(1 <= k <= n, "need 1 <= k <= n")


def tim_time_bound(n: int, m: int, k: int, ell: float, epsilon: float) -> float:
    """TIM/TIM+: ``(k + ℓ)(m + n) ln n / ε²`` (Theorems 1–3)."""
    _check(n, m, k)
    return (k + ell) * (m + n) * math.log(n) / (epsilon**2)


def ris_time_bound(n: int, m: int, k: int, ell: float, epsilon: float) -> float:
    """RIS: ``k ℓ² (m + n) ln² n / ε³`` (Borgs et al., as corrected in §1)."""
    _check(n, m, k)
    return k * ell * ell * (m + n) * (math.log(n) ** 2) / (epsilon**3)


def greedy_time_bound(n: int, m: int, k: int, num_runs: int) -> float:
    """Greedy: ``k m n r`` (Section 2.2)."""
    _check(n, m, k)
    require(num_runs >= 1, "num_runs must be >= 1")
    return float(k) * m * n * num_runs


def borgs_lower_bound(n: int, m: int) -> float:
    """The Ω(m + n) lower bound any constant-approximation algorithm obeys."""
    require(n >= 0 and m >= 0, "n, m must be non-negative")
    return float(m + n)
