"""Concentration bounds and sample-size requirements from the paper.

Lemma 1's Chernoff bounds drive every guarantee in the paper; the helpers
here evaluate them numerically so tests (and curious users) can check that
the prescribed sample counts indeed push failure probabilities below
``n^{-ℓ}``.
"""

from __future__ import annotations

import math

from repro.algorithms.greedy import recommended_monte_carlo_runs
from repro.core.parameters import lambda_param
from repro.utils.validation import require

__all__ = [
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "theta_lower_bound",
    "required_theta_failure_probability",
    "recommended_monte_carlo_runs",
]


def chernoff_upper_tail(count: int, mean: float, delta: float) -> float:
    """Lemma 1 upper tail: ``Pr[X - cμ ≥ δcμ] ≤ exp(−δ²cμ / (2 + δ))``."""
    require(count > 0, "count must be positive")
    require(0.0 <= mean <= 1.0, "mean must be in [0, 1]")
    require(delta > 0.0, "delta must be positive")
    exponent = -(delta * delta) / (2.0 + delta) * count * mean
    return math.exp(exponent)


def chernoff_lower_tail(count: int, mean: float, delta: float) -> float:
    """Lemma 1 lower tail: ``Pr[X - cμ ≤ −δcμ] ≤ exp(−δ²cμ / 2)``."""
    require(count > 0, "count must be positive")
    require(0.0 <= mean <= 1.0, "mean must be in [0, 1]")
    require(delta > 0.0, "delta must be positive")
    exponent = -(delta * delta) / 2.0 * count * mean
    return math.exp(exponent)


def theta_lower_bound(n: int, k: int, epsilon: float, ell: float, opt: float) -> float:
    """Equation 2's requirement: θ ≥ λ / OPT.

    The true OPT is unknown at runtime — Algorithms 2 and 3 exist to supply
    a lower bound for it — but the exact oracles in tests *can* evaluate
    this and confirm TIM's θ clears it.
    """
    require(opt > 0.0, "opt must be positive")
    return lambda_param(n, k, epsilon, ell) / opt


def required_theta_failure_probability(
    theta: int, n: int, k: int, epsilon: float, opt: float, spread: float
) -> float:
    """Evaluate Lemma 3's per-set failure bound for a concrete θ.

    Probability that ``|n·F_R(S) − E[I(S)]| ≥ (ε/2)·OPT`` for one fixed set
    with expected spread ``spread``, using the same Chernoff split as the
    proof (ρ = spread / n, δ = ε·OPT / (2·n·ρ)).
    """
    require(theta > 0, "theta must be positive")
    require(0.0 < spread <= n, "spread must be in (0, n]")
    rho = spread / n
    delta = epsilon * opt / (2.0 * n * rho)
    return chernoff_upper_tail(theta, rho, delta) + chernoff_lower_tail(theta, rho, delta)
