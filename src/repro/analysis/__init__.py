"""Theory utilities: Chernoff bounds, exact oracles, estimators, cost models."""

from repro.analysis.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    recommended_monte_carlo_runs,
    required_theta_failure_probability,
    theta_lower_bound,
)
from repro.analysis.complexity import (
    borgs_lower_bound,
    greedy_time_bound,
    ris_time_bound,
    tim_time_bound,
)
from repro.analysis.estimators import (
    estimate_ept,
    estimate_kpt_by_definition,
    estimate_kpt_by_kappa,
    sample_indegree_weighted_node,
    sample_indegree_weighted_set,
)
from repro.analysis.exact import (
    brute_force_opt,
    enumerate_ic_worlds,
    exact_activation_probability_ic,
    exact_spread_ic,
    exact_spread_lt,
)

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "recommended_monte_carlo_runs",
    "required_theta_failure_probability",
    "theta_lower_bound",
    "borgs_lower_bound",
    "greedy_time_bound",
    "ris_time_bound",
    "tim_time_bound",
    "estimate_ept",
    "estimate_kpt_by_definition",
    "estimate_kpt_by_kappa",
    "sample_indegree_weighted_node",
    "sample_indegree_weighted_set",
    "brute_force_opt",
    "enumerate_ic_worlds",
    "exact_activation_probability_ic",
    "exact_spread_ic",
    "exact_spread_lt",
]
