"""Deterministic fault injection — a process-global, schedule-driven plan.

The chaos half of :mod:`repro.faults`: production code threads *injection
points* (``faults.checkpoint("parallel.wave")``) through the hot paths, and
a test (or ``REPRO_FAULTS`` in the environment) installs a
:class:`FaultPlan` describing which checkpoints misbehave — "fail the Nth
pool wave", "raise ``MemoryError`` in extend #2", "truncate the sketch
write at byte B", "delay request #K by D ms".  Plans are seeded and
schedule-driven, so a chaos run is exactly reproducible.

The design mirrors the :mod:`repro.obs` tracer: one module-global armed
flag, checked first, so every checkpoint costs a single bool comparison
when no plan (and no deadline) is installed — zero overhead in production.

Registered injection sites (keep this list in sync with CONTRIBUTING.md):

===================== ====================================================
site                  where it fires
===================== ====================================================
``parallel.wave``     before each :class:`ParallelSampler` shard wave
``sketch.build``      start of ``SketchIndex.build``
``sketch.extend``     each ``SketchIndex.extend_flat`` call
``sketch.apply_update`` each ``SketchIndex.apply_update`` repair
``sketch.select``     each ``SketchIndex.select`` query
``sketch.save``       before the sketch temp-file write (rules may carry
                      ``truncate_at`` to tear the written payload)
``sketch.load``       start of ``load_sketch``
``serve.dispatch``    each ``InfluenceService`` request dispatch attempt
===================== ====================================================

Checkpoints double as **deadline** checks: :func:`deadline_scope` installs
a per-thread budget and any checkpoint past it raises
:class:`~repro.faults.errors.DeadlineExceeded` — which is how a select that
blows its ``deadline_ms`` comes back as a structured error instead of
hanging the JSONL loop.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.faults.errors import DeadlineExceeded, FatalError, TransientError
from repro.obs import runtime as obs
from repro.utils.rng import RandomSource

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "checkpoint",
    "clear",
    "deadline_scope",
    "enabled",
    "install",
    "install_from_env",
    "plan_scope",
    "remaining_ms",
]

#: Environment variable carrying a JSON fault plan (or ``@/path/to/plan``).
ENV_VAR = "REPRO_FAULTS"

#: Error kinds a rule may inject, mapped to the exception that is raised.
_ERROR_KINDS: dict[str, type[BaseException]] = {
    "transient": TransientError,
    "fatal": FatalError,
    "deadline": DeadlineExceeded,
    "memory": MemoryError,
    "oserror": OSError,
}


@dataclass(frozen=True)
class FaultRule:
    """One scheduled misbehaviour at one injection site.

    A site's checkpoints are counted from 0; the rule matches hits
    ``after <= hit < after + times`` (so ``after=1, times=1`` is "the 2nd
    occurrence").  ``probability`` (with the plan's seed) thins matching
    hits deterministically.  Actions compose: a rule may delay *and* raise.
    """

    site: str
    error: str | None = None
    delay_ms: float = 0.0
    truncate_at: int | None = None
    after: int = 0
    times: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise ValueError(f"fault rule needs a non-empty site string; got {self.site!r}")
        if self.error is not None and self.error not in _ERROR_KINDS:
            raise ValueError(
                f"unknown fault error kind {self.error!r}; "
                f"known: {sorted(_ERROR_KINDS)}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0; got {self.delay_ms!r}")
        if self.truncate_at is not None and self.truncate_at < 0:
            raise ValueError(f"truncate_at must be >= 0; got {self.truncate_at!r}")
        if self.after < 0 or self.times < 1:
            raise ValueError(
                f"need after >= 0 and times >= 1; got after={self.after!r} "
                f"times={self.times!r}")
        if not (0.0 < self.probability <= 1.0):
            raise ValueError(f"probability must be in (0, 1]; got {self.probability!r}")
        if self.error is None and self.delay_ms == 0.0 and self.truncate_at is None:
            raise ValueError(
                "fault rule has no action: set error=, delay_ms= and/or truncate_at=")

    def make_error(self, site: str, hit: int) -> BaseException:
        """The exception this rule injects (``error`` must be set)."""
        assert self.error is not None
        return _ERROR_KINDS[self.error](
            f"injected {self.error} fault at {site!r} (hit #{hit})")


class FaultPlan:
    """A seeded schedule of :class:`FaultRule` entries plus hit counters."""

    def __init__(self, rules: Iterable["FaultRule | Mapping[str, Any]"] = (),
                 *, seed: int = 0) -> None:
        self.rules: tuple[FaultRule, ...] = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule(**dict(rule))
            for rule in rules
        )
        self.seed = int(seed)
        self._hits: dict[str, int] = {}
        self._rng = RandomSource(self.seed)
        self._lock = threading.Lock()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse ``[{"site": ...}, ...]`` or ``{"seed": .., "rules": [...]}``."""
        data = json.loads(text)
        if isinstance(data, list):
            return cls(data)
        if isinstance(data, dict):
            rules = data.get("rules", [])
            if not isinstance(rules, list):
                raise ValueError(f"fault plan 'rules' must be a list; got {rules!r}")
            return cls(rules, seed=int(data.get("seed", 0)))
        raise ValueError(
            f"fault plan must be a JSON list of rules or an object with "
            f"'rules'; got {type(data).__name__}")

    def hits(self, site: str) -> int:
        """How many times ``site``'s checkpoint has fired under this plan."""
        with self._lock:
            return self._hits.get(site, 0)

    def fire(self, site: str) -> FaultRule | None:
        """Count one hit at ``site``; the matching rule to apply, if any."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            for rule in self.rules:
                if rule.site != site:
                    continue
                if not (rule.after <= hit < rule.after + rule.times):
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                return rule
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({len(self.rules)} rules, seed={self.seed})"


# ----------------------------------------------------------------------
# Process-global state (mirrors the obs runtime: one fast-path bool)
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None
_ACTIVE_DEADLINES = 0
_STATE_LOCK = threading.Lock()

#: The single fast-path flag: ``True`` iff a plan is installed or at least
#: one deadline scope is open anywhere in the process.  ``checkpoint()``
#: reads only this when disarmed.
_ARMED = False

_LOCAL = threading.local()


def _deadline_stack() -> list[float]:
    stack = getattr(_LOCAL, "deadlines", None)
    if stack is None:
        stack = []
        _LOCAL.deadlines = stack
    return stack


def _rearm() -> None:
    global _ARMED
    _ARMED = _PLAN is not None or _ACTIVE_DEADLINES > 0


def enabled() -> bool:
    """Whether any fault plan or deadline is currently armed."""
    return _ARMED


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` clears)."""
    global _PLAN
    with _STATE_LOCK:
        _PLAN = plan
        _rearm()


def clear() -> None:
    """Remove any installed fault plan."""
    install(None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _PLAN


@contextmanager
def plan_scope(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the ``with`` body, restoring the previous plan."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def install_from_env(env: Mapping[str, str] | None = None) -> FaultPlan | None:
    """Install the plan named by ``REPRO_FAULTS`` (inline JSON or ``@path``).

    Returns the installed plan, or ``None`` when the variable is unset or
    empty.  Used by the CLI so chaos jobs can inject faults into real
    ``repro sketch`` / ``repro serve`` processes without code changes.
    """
    env = os.environ if env is None else env
    raw = env.get(ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        if raw.startswith("@"):
            with open(raw[1:], "r", encoding="utf-8") as handle:
                raw = handle.read()
        plan = FaultPlan.from_json(raw)
    except (ValueError, TypeError, OSError) as exc:
        raise ValueError(f"invalid {ENV_VAR} fault plan: {exc}") from exc
    install(plan)
    return plan


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
@contextmanager
def deadline_scope(deadline_ms: float | None) -> Iterator[None]:
    """Arm a wall-clock budget for the ``with`` body (``None`` = no budget).

    Scopes nest; the *tightest* enclosing budget wins.  Any
    :func:`checkpoint` reached after expiry raises
    :class:`~repro.faults.errors.DeadlineExceeded`.  The budget is
    per-thread: concurrent requests cannot expire each other.
    """
    global _ACTIVE_DEADLINES
    if deadline_ms is None:
        yield
        return
    if deadline_ms <= 0:
        raise ValueError(f"deadline_ms must be > 0; got {deadline_ms!r}")
    stack = _deadline_stack()
    stack.append(obs.now() + deadline_ms / 1000.0)
    with _STATE_LOCK:
        _ACTIVE_DEADLINES += 1
        _rearm()
    try:
        yield
    finally:
        stack.pop()
        with _STATE_LOCK:
            _ACTIVE_DEADLINES -= 1
            _rearm()


def remaining_ms() -> float | None:
    """Milliseconds left on the tightest active deadline (``None`` if none)."""
    stack = _deadline_stack()
    if not stack:
        return None
    return 1000.0 * (min(stack) - obs.now())


def _check_deadline(site: str) -> None:
    stack = _deadline_stack()
    if stack and obs.now() > min(stack):
        raise DeadlineExceeded(
            f"deadline exceeded at {site!r} "
            f"(over budget by {-(remaining_ms() or 0.0):.1f}ms)")


# ----------------------------------------------------------------------
# The injection point
# ----------------------------------------------------------------------
def checkpoint(site: str) -> FaultRule | None:
    """One injection point: a single bool check when nothing is armed.

    Armed, it (in order) raises ``DeadlineExceeded`` if the active budget
    is spent, then applies the plan's matching rule: sleep ``delay_ms``
    (re-checking the deadline after — a delay can spend the budget), raise
    the rule's ``error``, and/or return the rule so call sites that
    understand richer actions (``truncate_at`` in the sketch writer) can
    apply them.  Returns ``None`` when nothing fires.
    """
    if not _ARMED:
        return None
    return _checkpoint_armed(site)


def _checkpoint_armed(site: str) -> FaultRule | None:
    _check_deadline(site)
    plan = _PLAN
    if plan is None:
        return None
    rule = plan.fire(site)
    if rule is None:
        return None
    if rule.delay_ms > 0.0:
        time.sleep(rule.delay_ms / 1000.0)
        _check_deadline(site)
    if rule.error is not None:
        raise rule.make_error(site, plan.hits(site) - 1)
    return rule
