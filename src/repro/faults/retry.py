"""`RetryPolicy` — bounded, deterministic retries for transient failures.

The recovery half of :mod:`repro.faults`: a frozen policy describing how
many attempts an operation gets and how long to back off between them.
Backoff is exponential with **seeded** jitter (via
:class:`~repro.utils.rng.RandomSource`, never an unseeded global), so the
full delay schedule is a pure function of the policy — two runs of the same
chaos test sleep the same milliseconds.

Used by :class:`~repro.parallel.engine.ParallelSampler` (pool waves: each
attempt tears down and respawns the pool, then re-runs the *same* shard
seed stream, so a retried wave reproduces the exact bytes of an un-faulted
run) and by :class:`~repro.sketch.service.InfluenceService` (idempotent
request dispatch).  :class:`~repro.faults.errors.DeadlineExceeded` is never
retried — the budget is already spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.faults.errors import DeadlineExceeded, is_retryable
from repro.utils.rng import RandomSource

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts an operation gets, and the backoff between them.

    ``max_attempts`` counts the first try: ``max_attempts=3`` is one try
    plus up to two retries.  Delay before retry ``i`` (1-based) is
    ``min(max_delay_ms, base_delay_ms * multiplier**(i-1))`` stretched by
    up to ``jitter`` (a fraction), drawn from a generator seeded with
    ``seed`` — see :meth:`delays_ms`.
    """

    max_attempts: int = 3
    base_delay_ms: float = 5.0
    multiplier: float = 2.0
    max_delay_ms: float = 100.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1; got {self.max_attempts!r}")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("base_delay_ms and max_delay_ms must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1; got {self.multiplier!r}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1]; got {self.jitter!r}")

    def delays_ms(self) -> tuple[float, ...]:
        """The full backoff schedule — ``max_attempts - 1`` delays.

        A pure function of the policy (the jitter stream restarts from
        ``seed`` on every call), so retries are as reproducible as the
        work they guard.
        """
        source = RandomSource(self.seed)
        delays: list[float] = []
        for attempt in range(1, self.max_attempts):
            delay = min(self.max_delay_ms,
                        self.base_delay_ms * self.multiplier ** (attempt - 1))
            if self.jitter > 0.0:
                delay *= 1.0 + self.jitter * source.random()
            delays.append(delay)
        return tuple(delays)


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    retryable: Callable[[BaseException], bool] = is_retryable,
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn`` under ``policy``; re-raise the last error when exhausted.

    Only failures ``retryable`` approves are retried (default: the
    :mod:`repro.faults.errors` taxonomy — ``TransientError``,
    ``BrokenExecutor``, ``MemoryError``, timeouts).
    ``DeadlineExceeded`` always propagates immediately.  ``on_retry``
    is called with ``(attempt_number, exception)`` before each backoff
    sleep, for counters/logging.
    """
    delays = policy.delays_ms()
    for attempt in range(policy.max_attempts):
        if attempt > 0:
            sleep(delays[attempt - 1] / 1000.0)
        try:
            return fn()
        except DeadlineExceeded:
            raise
        except Exception as exc:
            if not retryable(exc) or attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt + 1, exc)
    raise AssertionError("unreachable: the loop returns or raises")
