"""`repro.faults` — deterministic fault injection and the hardening it tests.

Three pieces, used together by the chaos suite (``tests/faults/``) and the
CI chaos job:

* :mod:`repro.faults.errors` — the retryable-error taxonomy
  (``ReproError`` → ``TransientError`` / ``FatalError`` /
  ``DeadlineExceeded``) with stable wire codes,
* :mod:`repro.faults.injection` — a seeded, schedule-driven
  :class:`FaultPlan` behind zero-overhead ``checkpoint()`` injection points
  threaded through pool waves, sketch build/extend/save/load, and service
  dispatch, plus per-request ``deadline_scope`` budgets,
* :mod:`repro.faults.retry` — a deterministic :class:`RetryPolicy`
  (exponential backoff, seeded jitter) applied to pool waves and service
  dispatch.

Install a plan in-process::

    from repro.faults import FaultPlan, FaultRule, plan_scope

    with plan_scope(FaultPlan([FaultRule(site="parallel.wave",
                                         error="transient", times=2)])):
        ...  # the first two pool waves fail; retries recover, same bytes

or from the environment (the CLI calls ``install_from_env()`` on startup)::

    REPRO_FAULTS='[{"site": "parallel.wave", "error": "transient"}]' \\
        repro-im serve --jobs 2 ...

Disabled — no plan installed, no deadline armed — every checkpoint is a
single module-global bool check, mirroring the :mod:`repro.obs` tracer, so
results and bytes are identical with the layer compiled in or out.
"""

from repro.faults.errors import (
    DeadlineExceeded,
    FatalError,
    ReproError,
    TransientError,
    error_code,
    is_retryable,
)
from repro.faults.injection import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    active_plan,
    checkpoint,
    clear,
    deadline_scope,
    enabled,
    install,
    install_from_env,
    plan_scope,
    remaining_ms,
)
from repro.faults.retry import RetryPolicy, call_with_retry

__all__ = [
    "ENV_VAR",
    "DeadlineExceeded",
    "FatalError",
    "FaultPlan",
    "FaultRule",
    "ReproError",
    "RetryPolicy",
    "TransientError",
    "active_plan",
    "call_with_retry",
    "checkpoint",
    "clear",
    "deadline_scope",
    "enabled",
    "error_code",
    "install",
    "install_from_env",
    "is_retryable",
    "plan_scope",
    "remaining_ms",
]
