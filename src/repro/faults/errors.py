"""The retryable-error taxonomy the hardening layers share.

Every failure the serving stack can *handle* (rather than propagate as a
crash) is classified under :class:`ReproError`:

* :class:`TransientError` — safe to retry: a crashed worker pool wave, a
  flaky broadcast, an injected chaos fault.  Retrying re-runs the same
  deterministic seed stream, so a retried wave produces the exact bytes an
  un-faulted run would have.
* :class:`FatalError` — retrying cannot help (invariant violation,
  unrecoverable state); surface it as a structured error immediately.
* :class:`DeadlineExceeded` — the request blew its ``deadline_ms`` budget.
  Never retried: the budget is already spent.

Each class carries two stable attributes the wire layer lifts into
:class:`~repro.api.ops.ErrorResponse` payloads: ``code`` (a stable
machine-readable string) and ``retryable`` (whether a client may usefully
resubmit).  :func:`is_retryable` extends the classification to the stdlib
failures the stack already survives (``BrokenExecutor``, ``MemoryError``,
timeouts), so retry loops need a single predicate.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

__all__ = [
    "DeadlineExceeded",
    "FatalError",
    "ReproError",
    "TransientError",
    "error_code",
    "is_retryable",
]


class ReproError(Exception):
    """Base class for classified runtime failures (see module docstring)."""

    #: Stable machine-readable code for wire payloads.
    code: str = "internal"
    #: Whether resubmitting the same request may succeed.
    retryable: bool = False


class TransientError(ReproError):
    """A failure that a bounded, deterministic retry may recover from."""

    code = "transient"
    retryable = True


class FatalError(ReproError):
    """A failure retrying cannot fix; fail fast with a structured error."""

    code = "fatal"
    retryable = False


class DeadlineExceeded(ReproError):
    """The operation exceeded its ``deadline_ms`` budget; never retried."""

    code = "deadline_exceeded"
    retryable = False


#: Stdlib failures the stack treats as transient even though they predate
#: the taxonomy: a crashed pool respawns with the same seed stream, an OOM
#: may succeed after the memory-budget eviction frees headroom, and a
#: timeout is transient by definition.
_RETRYABLE_BUILTINS = (BrokenExecutor, MemoryError, TimeoutError, ConnectionError)


def is_retryable(exc: BaseException) -> bool:
    """Whether a bounded retry of the failed operation may succeed."""
    if isinstance(exc, ReproError):
        return exc.retryable
    return isinstance(exc, _RETRYABLE_BUILTINS)


def error_code(exc: BaseException) -> str:
    """The stable wire code for ``exc`` (``getattr`` fallback chain)."""
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        return code
    if isinstance(exc, MemoryError):
        return "resource_exhausted"
    return "bad_request"
