"""Experiments versus the heuristic state of the art — Figures 8–11.

TIM+ runs at ε = ℓ = 1, the paper's "weak guarantees, high speed" setting
(Section 7.3); IRIE and SIMPATH use their authors' recommended tunables.
Shape targets:

* Fig. 8 — IRIE wins at small k, TIM+ overtakes as k grows (TIM+'s cost
  *falls* with k, IRIE's grows linearly);
* Fig. 9 — TIM+'s spreads ≥ IRIE's, visibly higher on some datasets;
* Fig. 10 — TIM+ faster than SIMPATH by large margins at k = 50;
* Fig. 11 — TIM+'s spreads ≥ SIMPATH's.

Both heuristics select greedily, so one k = max(k) run supplies every
prefix measurement, like CELF++ in Figure 3.
"""

from __future__ import annotations

from functools import lru_cache

from repro.algorithms.irie import irie
from repro.algorithms.simpath import simpath
from repro.core.tim import tim_plus
from repro.datasets.registry import build_dataset
from repro.diffusion.spread import estimate_spread
from repro.experiments.reporting import ExperimentResult
from repro.utils.rng import RandomSource

__all__ = ["figure8", "figure9", "figure10", "figure11"]

_DATASETS = ("nethept", "epinions", "dblp", "livejournal")


@lru_cache(maxsize=32)
def _weighted(dataset: str, scale: float, model: str):
    return build_dataset(dataset, scale).weighted_for(model)


@lru_cache(maxsize=16)
def _heuristic_curve(
    algorithm: str, dataset: str, scale: float, max_k: int, seed: int
) -> tuple[tuple[float, ...], tuple[int, ...]]:
    """One IRIE/SIMPATH run at max_k → (prefix times, seeds)."""
    if algorithm == "irie":
        graph = _weighted(dataset, scale, "IC")
        run = irie(graph, max_k, model="IC", rng=seed, ap_runs=100)
    elif algorithm == "simpath":
        graph = _weighted(dataset, scale, "LT")
        run = simpath(graph, max_k, model="LT")
    else:  # pragma: no cover - internal
        raise ValueError(algorithm)
    return tuple(run.extras["time_at_k"]), tuple(run.seeds)


@lru_cache(maxsize=16)
def _timplus_runs(
    dataset: str, scale: float, model: str, k_values: tuple[int, ...], seed: int
) -> tuple[tuple[float, ...], tuple[tuple[int, ...], ...]]:
    """TIM+ at ε=ℓ=1 per k → (times, seed tuples)."""
    graph = _weighted(dataset, scale, model)
    times: list[float] = []
    seeds: list[tuple[int, ...]] = []
    for k in k_values:
        run = tim_plus(graph, k, epsilon=1.0, ell=1.0, model=model, rng=seed + k)
        times.append(run.runtime_seconds)
        seeds.append(tuple(run.seeds))
    return tuple(times), tuple(seeds)


def _runtime_figure(
    name: str,
    model: str,
    heuristic: str,
    heuristic_label: str,
    scale: float,
    k_values: tuple[int, ...],
    datasets: tuple[str, ...],
    seed: int,
    shape_note: str,
) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        title=f"runtime (s) vs k, TIM+ (eps=l=1) vs {heuristic_label}, {model} "
        f"(scale={scale})",
        headers=["dataset", "k", "TIM+", heuristic_label],
        notes=[shape_note],
    )
    for dataset in datasets:
        heuristic_times, _ = _heuristic_curve(heuristic, dataset, scale, max(k_values), seed)
        tim_times, _ = _timplus_runs(dataset, scale, model, k_values, seed)
        for index, k in enumerate(k_values):
            result.add_row(dataset, k, tim_times[index], heuristic_times[k - 1])
    return result


def _spread_figure(
    name: str,
    model: str,
    heuristic: str,
    heuristic_label: str,
    scale: float,
    k_values: tuple[int, ...],
    datasets: tuple[str, ...],
    spread_samples: int,
    seed: int,
    shape_note: str,
) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        title=f"expected spread vs k, TIM+ (eps=l=1) vs {heuristic_label}, {model} "
        f"(scale={scale}, {spread_samples} MC runs)",
        headers=["dataset", "k", "TIM+", heuristic_label],
        notes=[shape_note],
    )
    for dataset in datasets:
        graph = _weighted(dataset, scale, model)
        _, heuristic_seeds = _heuristic_curve(heuristic, dataset, scale, max(k_values), seed)
        _, tim_seeds = _timplus_runs(dataset, scale, model, k_values, seed)
        scorer = RandomSource(seed + 999)
        for index, k in enumerate(k_values):
            tim_spread = estimate_spread(
                graph, tim_seeds[index], model=model, num_samples=spread_samples, rng=scorer.spawn()
            ).mean
            heuristic_spread = estimate_spread(
                graph,
                heuristic_seeds[:k],
                model=model,
                num_samples=spread_samples,
                rng=scorer.spawn(),
            ).mean
            result.add_row(dataset, k, tim_spread, heuristic_spread)
    return result


def figure8(
    scale: float = 0.5,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    datasets: tuple[str, ...] = _DATASETS,
    seed: int = 29,
) -> ExperimentResult:
    """Runtime vs k under IC: TIM+ vs IRIE (Figure 8a-d)."""
    return _runtime_figure(
        "figure-8",
        "IC",
        "irie",
        "IRIE",
        scale,
        k_values,
        datasets,
        seed,
        "paper shape: IRIE wins small k; TIM+ wins k > 20 (its cost falls with k)",
    )


def figure9(
    scale: float = 0.5,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    datasets: tuple[str, ...] = _DATASETS,
    spread_samples: int = 1000,
    seed: int = 29,
) -> ExperimentResult:
    """Spread vs k under IC: TIM+ vs IRIE (Figure 9a-d)."""
    return _spread_figure(
        "figure-9",
        "IC",
        "irie",
        "IRIE",
        scale,
        k_values,
        datasets,
        spread_samples,
        seed,
        "paper shape: TIM+ spreads >= IRIE's; noticeably higher on some datasets",
    )


def figure10(
    scale: float = 0.5,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    datasets: tuple[str, ...] = _DATASETS,
    seed: int = 31,
) -> ExperimentResult:
    """Runtime vs k under LT: TIM+ vs SIMPATH (Figure 10a-d)."""
    return _runtime_figure(
        "figure-10",
        "LT",
        "simpath",
        "SIMPATH",
        scale,
        k_values,
        datasets,
        seed,
        "paper shape: TIM+ consistently faster, by large margins at k=50",
    )


def figure11(
    scale: float = 0.5,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    datasets: tuple[str, ...] = _DATASETS,
    spread_samples: int = 1000,
    seed: int = 31,
) -> ExperimentResult:
    """Spread vs k under LT: TIM+ vs SIMPATH (Figure 11a-d)."""
    return _spread_figure(
        "figure-11",
        "LT",
        "simpath",
        "SIMPATH",
        scale,
        k_values,
        datasets,
        spread_samples,
        seed,
        "paper shape: TIM+ spreads no worse anywhere, higher on livejournal",
    )
