"""Export experiment results and run records to CSV / JSON.

A reproduction is only useful if its numbers leave the terminal; these
helpers serialise :class:`ExperimentResult` tables and
:class:`RunRecord` lists into the formats downstream plotting scripts eat.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import asdict

from repro.experiments.harness import RunRecord
from repro.experiments.reporting import ExperimentResult

__all__ = ["result_to_csv", "result_to_json", "records_to_json", "load_result_json"]


def result_to_csv(result: ExperimentResult, path: str | os.PathLike) -> None:
    """Write one experiment table as CSV (headers + rows)."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(["" if value is None else value for value in row])


def result_to_json(result: ExperimentResult, path: str | os.PathLike) -> None:
    """Write one experiment (metadata + rows) as JSON."""
    payload = {
        "name": result.name,
        "title": result.title,
        "headers": result.headers,
        "rows": result.rows,
        "notes": result.notes,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_result_json(path: str | os.PathLike) -> ExperimentResult:
    """Round-trip counterpart of :func:`result_to_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return ExperimentResult(
        name=payload["name"],
        title=payload["title"],
        headers=payload["headers"],
        rows=payload["rows"],
        notes=payload.get("notes", []),
    )


def records_to_json(records: list[RunRecord], path: str | os.PathLike) -> None:
    """Serialise harness run records (one JSON array)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([asdict(record) for record in records], handle, indent=2)
