"""Section 5 — theoretical comparisons, made executable.

The paper argues TIM/TIM+ dominate asymptotically:

* TIM:    O((k + ℓ)(m + n) log n / ε²)
* RIS:    O(k ℓ² (m + n) log² n / ε³)
* Greedy: O(k³ ℓ m n² ε⁻² log n / OPT) with Lemma 10's optimal r
          (the table below charges Greedy the folklore r = 10000 instead,
          which is *charitable* — Lemma 10's r is larger in every setting).

This experiment evaluates those bounds (constants dropped) at the *paper's*
dataset sizes, reproducing the orders-of-magnitude story of Section 5 — the
one table that needs no scaling down.
"""

from __future__ import annotations

from repro.analysis.complexity import greedy_time_bound, ris_time_bound, tim_time_bound
from repro.experiments.reporting import ExperimentResult

__all__ = ["section5_table"]

# The paper's Table 2 sizes (nodes, directed edges).
_PAPER_SIZES = {
    "nethept": (15_000, 62_000),
    "epinions": (76_000, 509_000),
    "dblp": (655_000, 4_000_000),
    "livejournal": (4_800_000, 69_000_000),
    "twitter": (41_600_000, 1_500_000_000),
}


def section5_table(
    k: int = 50, ell: float = 1.0, epsilon: float = 0.1, greedy_runs: int = 10_000
) -> ExperimentResult:
    """Predicted cost ratios RIS/TIM and Greedy/TIM at paper-scale sizes."""
    result = ExperimentResult(
        name="section-5",
        title=f"asymptotic cost model at paper-scale sizes (k={k}, eps={epsilon}, l={ell})",
        headers=["dataset", "tim_bound", "ris_bound", "greedy_bound", "ris/tim", "greedy/tim"],
        notes=[
            "constants dropped; greedy charged folklore r=10000 (charitable)",
            "paper shape: RIS ~ l*log(n)/eps above TIM; Greedy out of reach",
        ],
    )
    for dataset, (n, m) in _PAPER_SIZES.items():
        tim = tim_time_bound(n, m, k, ell, epsilon)
        ris = ris_time_bound(n, m, k, ell, epsilon)
        greedy = greedy_time_bound(n, m, k, greedy_runs)
        result.add_row(dataset, tim, ris, greedy, ris / tim, greedy / tim)
    return result
