"""Execution harness: run one algorithm configuration, record everything.

A :class:`RunRecord` captures what the paper's figures need — wall-clock,
the algorithm's own diagnostics (θ, KPT*, KPT⁺, phase times for TIM-family),
an optional *independent* Monte-Carlo spread re-estimate (the paper re-scores
every method's seeds with 10⁵ simulations), and memory figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import maximize_influence
from repro.core.results import TIMResult
from repro.diffusion.spread import estimate_spread
from repro.graphs.digraph import DiGraph
from repro.utils.memory import track_peak
from repro.utils.rng import resolve_rng

__all__ = ["RunRecord", "run_algorithm"]


@dataclass
class RunRecord:
    """One (algorithm, dataset, model, k) measurement."""

    algorithm: str
    dataset: str
    model: str
    k: int
    runtime_seconds: float
    seeds: list[int] = field(default_factory=list)
    spread: float | None = None
    internal_spread: float | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)
    kpt_star: float | None = None
    kpt_plus: float | None = None
    theta: int | None = None
    rr_collection_bytes: int | None = None
    peak_memory_bytes: int | None = None
    extras: dict = field(default_factory=dict)


def run_algorithm(
    graph: DiGraph,
    algorithm: str,
    k: int,
    model="IC",
    dataset: str = "?",
    rng=None,
    spread_samples: int | None = None,
    track_memory: bool = False,
    **kwargs,
) -> RunRecord:
    """Run one configuration and return its :class:`RunRecord`.

    ``spread_samples`` triggers an independent MC re-estimate of the seed
    set's spread (excluded from the recorded runtime, exactly as the paper
    excludes its 10⁵-run scoring from the timing figures).
    """
    source = resolve_rng(rng)
    if track_memory:
        with track_peak() as tracker:
            result = maximize_influence(graph, k, algorithm=algorithm, model=model, rng=source, **kwargs)
        peak = tracker.peak_bytes
    else:
        result = maximize_influence(graph, k, algorithm=algorithm, model=model, rng=source, **kwargs)
        peak = None

    record = RunRecord(
        algorithm=result.algorithm,
        dataset=dataset,
        model=result.model,
        k=k,
        runtime_seconds=result.runtime_seconds,
        seeds=list(result.seeds),
        internal_spread=result.estimated_spread,
        phase_seconds=dict(result.phase_seconds),
        peak_memory_bytes=peak,
        extras=dict(result.extras),
    )
    if isinstance(result, TIMResult):
        record.kpt_star = result.kpt_star
        record.kpt_plus = result.kpt_plus
        record.theta = result.theta
        record.rr_collection_bytes = result.rr_collection_bytes
    if spread_samples is not None:
        estimate = estimate_spread(
            graph, result.seeds, model=model, num_samples=spread_samples, rng=source.spawn()
        )
        record.spread = estimate.mean
    return record
