"""Scalability experiments — Table 2 and Figures 6, 7 and 12.

Shape targets on the four large stand-ins:

* Fig. 6 — TIM+ beats TIM by 1–2 orders of magnitude everywhere; both run
  faster under LT than IC; TIM is omitted on the Twitter stand-in, exactly
  as the paper omits it from Figure 6d for excessive cost.
* Fig. 7 — runtime falls steeply as ε grows (θ ∝ ε⁻²).
* Fig. 12 — memory tracks |R| = λ/KPT⁺: IC > LT, and the NetHEPT stand-in
  out-consumes the (larger) Epinions one because its KPT⁺ is far smaller.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.tim import tim, tim_plus
from repro.datasets.registry import build_dataset, dataset_names, dataset_spec
from repro.experiments.reporting import ExperimentResult
from repro.graphs.stats import summarize

__all__ = ["table2", "figure6", "figure7", "figure12"]

_LARGE_DATASETS = ("epinions", "dblp", "livejournal", "twitter")
#: Datasets where unrefined TIM is too slow to sweep (the paper's Fig. 6d note).
_TIM_OMITTED = ("twitter",)


@lru_cache(maxsize=32)
def _weighted(dataset: str, scale: float, model: str):
    return build_dataset(dataset, scale).weighted_for(model)


def table2(scale: float = 1.0) -> ExperimentResult:
    """Dataset characteristics: the paper's Table 2 next to our stand-ins."""
    result = ExperimentResult(
        name="table-2",
        title=f"dataset characteristics (stand-ins at scale={scale})",
        headers=[
            "name",
            "paper_n",
            "paper_m",
            "paper_avg_deg",
            "ours_n",
            "ours_m",
            "ours_avg_deg",
            "type",
        ],
        notes=["stand-ins preserve type, avg degree and relative size order"],
    )
    for name in dataset_names():
        spec = dataset_spec(name)
        dataset = build_dataset(name, scale)
        summary = summarize(dataset.graph, name, undirected=spec.undirected)
        result.add_row(
            name,
            spec.paper_nodes,
            spec.paper_edges,
            spec.paper_avg_degree,
            summary.num_nodes,
            summary.num_edges,
            round(summary.average_degree, 1),
            summary.graph_type,
        )
    return result


def figure6(
    scale: float = 0.5,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    epsilon: float = 0.5,
    datasets: tuple[str, ...] = _LARGE_DATASETS,
    seed: int = 17,
) -> ExperimentResult:
    """Running time vs k on the large stand-ins, IC and LT (Figure 6a-d)."""
    result = ExperimentResult(
        name="figure-6",
        title=f"runtime (s) vs k on large stand-ins (scale={scale}, eps={epsilon})",
        headers=["dataset", "k", "TIM(IC)", "TIM+(IC)", "TIM(LT)", "TIM+(LT)"],
        notes=[
            "TIM omitted on twitter (excessive cost), as in the paper's Fig. 6d",
            "paper shape: TIM+ faster than TIM by up to ~2 orders; LT faster than IC",
        ],
    )
    for dataset in datasets:
        run_tim = dataset not in _TIM_OMITTED
        for k in k_values:
            row: list = [dataset, k]
            for model in ("IC", "LT"):
                graph = _weighted(dataset, scale, model)
                if run_tim:
                    tim_run = tim(graph, k, epsilon=epsilon, model=model, rng=seed + k)
                    row.append(tim_run.runtime_seconds)
                else:
                    row.append(None)
                timp_run = tim_plus(graph, k, epsilon=epsilon, model=model, rng=seed + k + 1)
                row.append(timp_run.runtime_seconds)
            # Reorder into TIM(IC), TIM+(IC), TIM(LT), TIM+(LT).
            result.rows.append([row[0], row[1], row[2], row[3], row[4], row[5]])
    return result


def figure7(
    scale: float = 0.4,
    epsilons: tuple[float, ...] = (0.25, 0.3, 0.4, 0.5),
    k: int = 50,
    datasets: tuple[str, ...] = _LARGE_DATASETS,
    seed: int = 19,
) -> ExperimentResult:
    """Running time vs ε on the large stand-ins (Figure 7a-d).

    The paper sweeps ε ∈ [0.1, 0.4]; ours starts at 0.25 because pure-Python
    θ at ε = 0.1 is out of budget (the trend is unaffected: θ ∝ ε⁻²).
    """
    result = ExperimentResult(
        name="figure-7",
        title=f"runtime (s) vs epsilon on large stand-ins (k={k}, scale={scale})",
        headers=["dataset", "epsilon", "TIM(IC)", "TIM+(IC)", "TIM(LT)", "TIM+(LT)"],
        notes=[
            "TIM omitted on twitter as in Fig. 6d",
            "paper shape: runtime falls steeply as epsilon grows",
        ],
    )
    for dataset in datasets:
        run_tim = dataset not in _TIM_OMITTED
        for epsilon in epsilons:
            row: list = [dataset, epsilon]
            for model in ("IC", "LT"):
                graph = _weighted(dataset, scale, model)
                if run_tim:
                    tim_run = tim(graph, k, epsilon=epsilon, model=model, rng=seed)
                    row.append(tim_run.runtime_seconds)
                else:
                    row.append(None)
                timp_run = tim_plus(graph, k, epsilon=epsilon, model=model, rng=seed + 1)
                row.append(timp_run.runtime_seconds)
            result.rows.append(row)
    return result


def figure12(
    scale: float = 0.5,
    k_values: tuple[int, ...] = (1, 10, 50),
    epsilon: float = 0.5,
    datasets: tuple[str, ...] = tuple(dataset_names()),
    seed: int = 23,
) -> ExperimentResult:
    """TIM+ memory vs k, IC and LT, all five stand-ins (Figure 12a-e).

    Reported figure is the bytes held by Algorithm 1's RR collection — the
    paper's own Section 7.4 attribution of TIM+'s footprint (|R| = λ/KPT⁺).
    The paper measures at ε = 0.1 (adversarial for memory); ours at 0.5 with
    the same ∝ ε⁻² relationship.
    """
    result = ExperimentResult(
        name="figure-12",
        title=f"TIM+ RR-collection memory (MiB) vs k (scale={scale}, eps={epsilon})",
        headers=["dataset", "k", "IC_mib", "LT_mib", "IC_rr_sets", "LT_rr_sets"],
        notes=[
            "paper shape: IC > LT per dataset; nethept > epinions despite"
            " fewer nodes (smaller KPT+)",
        ],
    )
    mib = 1024.0 * 1024.0
    for dataset in datasets:
        for k in k_values:
            cells: dict[str, tuple[float, int]] = {}
            for model in ("IC", "LT"):
                graph = _weighted(dataset, scale, model)
                run = tim_plus(graph, k, epsilon=epsilon, model=model, rng=seed + k)
                cells[model] = (run.rr_collection_bytes / mib, run.theta)
            result.add_row(
                dataset, k, cells["IC"][0], cells["LT"][0], cells["IC"][1], cells["LT"][1]
            )
    return result
