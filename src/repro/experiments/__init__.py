"""Experiment harness and per-figure reproductions of the paper's Section 7."""

from repro.experiments.ablations import (
    ablation_coverage,
    ablation_engine,
    ablation_ic_fast_path,
)
from repro.experiments.export import (
    load_result_json,
    records_to_json,
    result_to_csv,
    result_to_json,
)
from repro.experiments.figures_baselines import figure3, figure4, figure5
from repro.experiments.figures_heuristics import figure8, figure9, figure10, figure11
from repro.experiments.figures_scale import figure6, figure7, figure12, table2
from repro.experiments.harness import RunRecord, run_algorithm
from repro.experiments.reporting import ExperimentResult, format_table, render
from repro.experiments.theory import section5_table

#: Registry mapping experiment ids to their generator functions.
EXPERIMENTS = {
    "table2": table2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "section5": section5_table,
    "ablation-sampler": ablation_ic_fast_path,
    "ablation-coverage": ablation_coverage,
    "ablation-engine": ablation_engine,
}

__all__ = [
    "EXPERIMENTS",
    "ablation_coverage",
    "ablation_engine",
    "ablation_ic_fast_path",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "table2",
    "RunRecord",
    "run_algorithm",
    "ExperimentResult",
    "format_table",
    "render",
    "section5_table",
    "load_result_json",
    "records_to_json",
    "result_to_csv",
    "result_to_json",
]
