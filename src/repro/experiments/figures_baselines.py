"""Experiments versus the guaranteed baselines — Figures 3, 4 and 5.

All on the NetHEPT stand-in, as in the paper's Section 7.2.  Scale and
sample-count defaults are tuned for pure Python (DESIGN.md §3); the *shape*
targets are:

* Fig. 3 — TIM+ < TIM ≪ CELF++ and RIS, by orders of magnitude;
* Fig. 4 — node selection (Algorithm 1) dominates both phases; TIM+'s
  refinement cost is negligible yet slashes Algorithm 1's share;
* Fig. 5 — methods' spreads are statistically indistinguishable while
  KPT⁺ ≥ 3 × KPT*.

The greedy-family baseline (CELF++) is run once at max(k) and its nested
prefix timings/seeds reused for every smaller k — identical measurements to
rerunning, without the rerun.
"""

from __future__ import annotations

from functools import lru_cache

from repro.algorithms.celfpp import celf_plus_plus
from repro.algorithms.ris import ris
from repro.core.tim import tim, tim_plus
from repro.datasets.registry import build_dataset
from repro.diffusion.spread import estimate_spread
from repro.experiments.reporting import ExperimentResult
from repro.utils.rng import RandomSource

__all__ = ["figure3", "figure4", "figure5"]


@lru_cache(maxsize=32)
def _weighted(dataset: str, scale: float, model: str):
    return build_dataset(dataset, scale).weighted_for(model)


@lru_cache(maxsize=8)
def _celfpp_curve(model: str, scale: float, max_k: int, num_runs: int, seed: int):
    """One CELF++ run at max_k; returns (time_at_k, seeds)."""
    graph = _weighted("nethept", scale, model)
    result = celf_plus_plus(graph, max_k, model=model, rng=seed, num_runs=num_runs)
    return tuple(result.extras["time_at_k"]), tuple(result.seeds)


def figure3(
    model: str = "IC",
    scale: float = 0.35,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    epsilon: float = 0.3,
    celf_runs: int = 40,
    ris_tau_constant: float = 1.0,
    seed: int = 7,
) -> ExperimentResult:
    """Computation time vs k on NetHEPT (Figure 3a=IC / 3b=LT)."""
    graph = _weighted("nethept", scale, model)
    sub = "a" if model.upper() == "IC" else "b"
    result = ExperimentResult(
        name=f"figure-3{sub}",
        title=f"runtime (s) vs k on nethept stand-in, {model} model "
        f"(n={graph.n}, eps={epsilon})",
        headers=["k", "TIM", "TIM+", "RIS", "CELF++"],
        notes=[
            f"CELF++ measured as prefix times of one k={max(k_values)} run "
            f"(r={celf_runs}); RIS tau constant {ris_tau_constant} (charitable: Borgs et al.'s true hidden constant is far larger, so RIS can still win at k=1)",
            "paper shape: TIM+ < TIM << CELF++, RIS slowest overall",
        ],
    )
    celf_times, _ = _celfpp_curve(model, scale, max(k_values), celf_runs, seed)
    for k in k_values:
        rng = RandomSource(seed + k)
        tim_result = tim(graph, k, epsilon=epsilon, model=model, rng=rng.spawn())
        timp_result = tim_plus(graph, k, epsilon=epsilon, model=model, rng=rng.spawn())
        ris_result = ris(
            graph, k, model=model, rng=rng.spawn(), epsilon=epsilon, tau_constant=ris_tau_constant
        )
        result.add_row(
            k,
            tim_result.runtime_seconds,
            timp_result.runtime_seconds,
            ris_result.runtime_seconds,
            celf_times[k - 1],
        )
    return result


def figure4(
    refine: bool = False,
    scale: float = 0.35,
    k_values: tuple[int, ...] = (1, 2, 5, 10, 20, 30, 40, 50),
    epsilon: float = 0.3,
    seed: int = 11,
) -> ExperimentResult:
    """Per-phase breakdown of TIM (4a) or TIM+ (4b) on NetHEPT, IC model."""
    graph = _weighted("nethept", scale, "IC")
    sub = "b" if refine else "a"
    algorithm = "TIM+" if refine else "TIM"
    result = ExperimentResult(
        name=f"figure-4{sub}",
        title=f"per-phase runtime (s) of {algorithm} on nethept stand-in, IC "
        f"(n={graph.n}, eps={epsilon})",
        headers=["k", "alg2_param_est", "alg3_refine", "alg1_node_sel", "total"],
        notes=["paper shape: Algorithm 1 dominates; Algorithm 3 cost negligible"],
    )
    for k in k_values:
        run = tim(graph, k, epsilon=epsilon, model="IC", rng=seed + k, refine=refine)
        phases = run.phase_seconds
        result.add_row(
            k,
            phases.get("parameter_estimation", 0.0),
            phases.get("refinement", 0.0),
            phases.get("node_selection", 0.0),
            sum(phases.values()),
        )
    return result


def figure5(
    model: str = "IC",
    scale: float = 0.35,
    k_values: tuple[int, ...] = (1, 5, 10, 20, 50),
    epsilon: float = 0.3,
    celf_runs: int = 40,
    ris_tau_constant: float = 1.0,
    spread_samples: int = 2000,
    seed: int = 13,
) -> ExperimentResult:
    """Expected spreads plus the KPT* / KPT⁺ lower bounds (Figure 5a/5b).

    Every method's seed set is re-scored with the same independent
    Monte-Carlo estimator, mirroring the paper's 10⁵-run scoring.
    """
    graph = _weighted("nethept", scale, model)
    sub = "a" if model.upper() == "IC" else "b"
    result = ExperimentResult(
        name=f"figure-5{sub}",
        title=f"expected spread and KPT bounds vs k on nethept stand-in, {model} "
        f"(n={graph.n})",
        headers=["k", "TIM", "TIM+", "RIS", "CELF++", "KPT*", "KPT+"],
        notes=[
            "paper shape: spreads statistically indistinguishable across methods;"
            " KPT+ >= ~3x KPT*",
        ],
    )
    _, celf_seeds = _celfpp_curve(model, scale, max(k_values), celf_runs, seed)

    def spread_of(seeds) -> float:
        return estimate_spread(
            graph, seeds, model=model, num_samples=spread_samples, rng=seed
        ).mean

    for k in k_values:
        rng = RandomSource(seed + 1000 * k)
        tim_result = tim(graph, k, epsilon=epsilon, model=model, rng=rng.spawn())
        timp_result = tim_plus(graph, k, epsilon=epsilon, model=model, rng=rng.spawn())
        ris_result = ris(
            graph, k, model=model, rng=rng.spawn(), epsilon=epsilon, tau_constant=ris_tau_constant
        )
        result.add_row(
            k,
            spread_of(tim_result.seeds),
            spread_of(timp_result.seeds),
            spread_of(ris_result.seeds),
            spread_of(celf_seeds[:k]),
            timp_result.kpt_star,
            timp_result.kpt_plus,
        )
    return result
