"""Ablations of this implementation's own design choices (DESIGN.md §4).

Not paper figures — these justify the two performance-relevant decisions we
made on top of the paper's algorithms:

* the Binomial fast path in the IC RR sampler (vs literal per-edge coins);
* the exact linear-time max-coverage greedy (vs a CELF-style lazy heap);
* the numpy-batched flat RR engine (vs the original per-set Python loops).

Each ablation reports both wall-clock and an output-equivalence check, so a
speed-up can never silently change semantics.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.registry import build_dataset
from repro.experiments.reporting import ExperimentResult
from repro.obs import runtime as obs
from repro.rrset.collection import RRCollection
from repro.rrset.coverage import greedy_max_coverage, lazy_greedy_max_coverage
from repro.rrset.ic_sampler import ICRRSampler
from repro.utils.rng import RandomSource

__all__ = ["ablation_ic_fast_path", "ablation_coverage", "ablation_engine"]


@lru_cache(maxsize=8)
def _ic_graph(dataset: str, scale: float):
    return build_dataset(dataset, scale).weighted_for("IC")


def ablation_ic_fast_path(
    datasets: tuple[str, ...] = ("nethept", "livejournal", "twitter"),
    scale: float = 0.5,
    num_sets: int = 20_000,
    seed: int = 37,
) -> ExperimentResult:
    """Per-edge coins vs Binomial subsampling in the IC RR sampler.

    The two are distributionally identical; the mean width column pair is
    the embedded equivalence check (they must agree within MC noise).
    """
    result = ExperimentResult(
        name="ablation-ic-fast-path",
        title=f"IC sampler fast path: time for {num_sets} RR sets (scale={scale})",
        headers=["dataset", "slow_s", "fast_s", "speedup", "mean_w_slow", "mean_w_fast"],
        notes=["fast path pays off as average in-degree grows (binomial + sample)"],
    )
    for dataset in datasets:
        graph = _ic_graph(dataset, scale)
        timings: dict[bool, float] = {}
        widths: dict[bool, float] = {}
        for fast in (False, True):
            sampler = ICRRSampler(graph, use_fast_path=fast)
            rng = RandomSource(seed)  # same stream for both variants
            started = obs.now()
            total_width = 0
            for _ in range(num_sets):
                total_width += sampler.sample(rng).width
            timings[fast] = obs.now() - started
            widths[fast] = total_width / num_sets
        result.add_row(
            dataset,
            timings[False],
            timings[True],
            timings[False] / timings[True] if timings[True] else None,
            widths[False],
            widths[True],
        )
    return result


def ablation_coverage(
    dataset: str = "livejournal",
    scale: float = 0.5,
    num_sets: int = 50_000,
    k_values: tuple[int, ...] = (1, 10, 50),
    seed: int = 41,
) -> ExperimentResult:
    """Exact linear-time greedy vs lazy-heap greedy on one RR collection.

    Coverage counts must match exactly (both are valid greedy executions;
    ties can differ but achieved coverage at each step cannot, since both
    always commit a true argmax).
    """
    graph = _ic_graph(dataset, scale)
    sampler = ICRRSampler(graph)
    rng = RandomSource(seed)
    collection = RRCollection(graph.n, graph.m)
    collection.extend(sampler.sample_many(num_sets, rng))

    result = ExperimentResult(
        name="ablation-coverage",
        title=f"max-coverage greedy variants on {dataset} stand-in "
        f"({num_sets} RR sets, scale={scale})",
        headers=["k", "exact_s", "lazy_s", "exact_covered", "lazy_covered"],
        notes=["covered counts must be equal: both variants are exact greedy"],
    )
    for k in k_values:
        started = obs.now()
        exact = greedy_max_coverage(collection.sets, graph.n, k)
        exact_elapsed = obs.now() - started
        started = obs.now()
        lazy = lazy_greedy_max_coverage(collection.sets, graph.n, k)
        lazy_elapsed = obs.now() - started
        result.add_row(k, exact_elapsed, lazy_elapsed, exact.covered, lazy.covered)
    return result


def ablation_engine(
    datasets: tuple[str, ...] = ("nethept", "livejournal"),
    scale: float = 0.5,
    num_sets: int = 20_000,
    seed: int = 53,
) -> ExperimentResult:
    """Python per-set loop vs the numpy-batched flat engine (PR 1 tentpole).

    Both engines draw from the same RR-set distribution; the mean-width
    column pair is the embedded equivalence check.
    """
    result = ExperimentResult(
        name="ablation-engine",
        title=f"RR engine: time for {num_sets} RR sets (scale={scale})",
        headers=["dataset", "python_s", "vectorized_s", "speedup", "mean_w_py", "mean_w_vec"],
        notes=["same distribution either way; widths must agree within MC noise"],
    )
    for dataset in datasets:
        graph = _ic_graph(dataset, scale)
        sampler = ICRRSampler(graph)
        sampler.sample_random_batch(min(num_sets, 500), RandomSource(0))  # warm-up

        rng = RandomSource(seed)
        started = obs.now()
        python_width = 0
        for _ in range(num_sets):
            python_width += sampler.sample(rng).width
        python_elapsed = obs.now() - started

        started = obs.now()
        batch = sampler.sample_random_batch(num_sets, RandomSource(seed + 1))
        vectorized_elapsed = obs.now() - started
        result.add_row(
            dataset,
            python_elapsed,
            vectorized_elapsed,
            python_elapsed / max(vectorized_elapsed, 1e-12),
            python_width / num_sets,
            float(batch.widths_array.mean()),
        )
    return result
