"""Plain-text rendering of experiment results.

The paper communicates through log-scale gnuplot figures; an offline
terminal reproduction communicates through aligned tables.  One row per
x-axis point (k or ε), one column per method/series — the same information
content as the figures, greppable from the bench logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_table", "render"]


@dataclass
class ExperimentResult:
    """A reproduced table/figure: metadata plus ready-to-print rows."""

    name: str  # e.g. "figure-3a"
    title: str  # human description, includes model/dataset
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def column(self, header: str) -> list:
        """Extract one column by header name (for assertions in tests)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` with its notes."""
    body = format_table(result.headers, result.rows, title=f"[{result.name}] {result.title}")
    if result.notes:
        body += "\n" + "\n".join(f"  note: {note}" for note in result.notes)
    return body
