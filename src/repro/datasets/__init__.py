"""Named synthetic stand-ins for the paper's datasets (Table 2)."""

from repro.datasets.registry import (
    Dataset,
    DatasetSpec,
    build_dataset,
    dataset_names,
    dataset_spec,
    paper_table2,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "build_dataset",
    "dataset_names",
    "dataset_spec",
    "paper_table2",
]
