"""Scaled synthetic stand-ins for the paper's five datasets (Table 2).

The original crawls (NetHEPT … Twitter) are unavailable offline and far
beyond pure-Python scale, so each is replaced by a generator preserving the
structural properties the algorithms are sensitive to (DESIGN.md §3):

* graph *type* (directed vs undirected),
* Table 2's *average degree* (2m/n convention),
* heavy-tailed degree distributions (preferential attachment for the
  citation-style undirected networks, power-law out-degree with
  preferential in-degree for the follower-style directed ones),
* the *relative size ordering* NetHEPT < Epinions < DBLP < LiveJournal
  < Twitter.

Every dataset builds deterministically from a fixed per-name seed, so
experiment rows are reproducible run to run.  ``scale`` multiplies the node
count for users with more patience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.diffusion.base import resolve_model
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import powerlaw_out_digraph, preferential_attachment_graph
from repro.graphs.stats import GraphSummary, summarize
from repro.graphs.weights import uniform_random_lt, weighted_cascade
from repro.utils.validation import require

__all__ = ["DatasetSpec", "Dataset", "dataset_names", "dataset_spec", "build_dataset", "paper_table2"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one stand-in and its paper counterpart."""

    name: str
    paper_nodes: str
    paper_edges: str
    paper_avg_degree: float
    undirected: bool
    default_nodes: int
    seed: int
    builder: Callable[[int, int], DiGraph]

    def build_graph(self, scale: float = 1.0) -> DiGraph:
        require(scale > 0, "scale must be positive")
        n = max(16, int(round(self.default_nodes * scale)))
        return self.builder(n, self.seed)


@dataclass
class Dataset:
    """A materialised stand-in: topology plus per-model weighted views."""

    spec: DatasetSpec
    graph: DiGraph

    @property
    def name(self) -> str:
        return self.spec.name

    def weighted_for(self, model) -> DiGraph:
        """The graph with the paper's Section 7.1 weights for ``model``.

        IC → weighted cascade (p = 1/indeg); LT → uniform random in-weights
        normalised per node.  The LT draw is seeded from the dataset seed so
        the weighted view is deterministic too.
        """
        name = resolve_model(model).name if not isinstance(model, str) else model.upper()
        if name == "IC":
            return weighted_cascade(self.graph)
        if name == "LT":
            return uniform_random_lt(self.graph, rng=self.spec.seed + 1)
        raise ValueError(f"no standard weighting defined for model {name!r}")

    def summary(self) -> GraphSummary:
        return summarize(self.graph, self.spec.name, undirected=self.spec.undirected)

    def build_sketch(self, model="IC", **kwargs):
        """Build a :class:`~repro.sketch.index.SketchIndex` for this stand-in.

        Convenience for serving workflows: applies the Section 7.1 weighting
        for ``model`` and forwards ``kwargs`` (``theta`` or ``k``/``epsilon``
        /``ell``, ``rng``, ``engine``) to :meth:`SketchIndex.build`.
        """
        from repro.sketch import SketchIndex

        return SketchIndex.build(self.weighted_for(model), model, **kwargs)


def _pa(edges_per_node: int) -> Callable[[int, int], DiGraph]:
    def build(n: int, seed: int) -> DiGraph:
        return preferential_attachment_graph(n, edges_per_node, rng=seed)

    return build


def _powerlaw(avg_out_degree: float, exponent: float) -> Callable[[int, int], DiGraph]:
    def build(n: int, seed: int) -> DiGraph:
        return powerlaw_out_digraph(n, avg_out_degree, exponent=exponent, rng=seed)

    return build


# Average degrees follow Table 2 (2m/n); for directed graphs the generator
# receives the average *out*-degree, i.e. half the table value.
_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("nethept", "15K", "31K", 4.1, True, 1_500, 101, _pa(2)),
        DatasetSpec("epinions", "76K", "509K", 13.4, False, 2_400, 102, _powerlaw(6.7, 2.2)),
        DatasetSpec("dblp", "655K", "2M", 6.1, True, 4_000, 103, _pa(3)),
        DatasetSpec("livejournal", "4.8M", "69M", 28.5, False, 6_000, 104, _powerlaw(14.25, 2.3)),
        DatasetSpec("twitter", "41.6M", "1.5G", 70.5, False, 8_000, 105, _powerlaw(35.25, 2.1)),
    )
}


def dataset_names() -> list[str]:
    """Stand-in names in the paper's size order."""
    return ["nethept", "epinions", "dblp", "livejournal", "twitter"]


def dataset_spec(name: str) -> DatasetSpec:
    """Spec lookup (KeyError-safe with a helpful message)."""
    key = name.lower()
    if key not in _SPECS:
        raise ValueError(f"unknown dataset {name!r}; known: {dataset_names()}")
    return _SPECS[key]


def build_dataset(name: str, scale: float = 1.0) -> Dataset:
    """Materialise a stand-in dataset at the given scale (deterministic)."""
    spec = dataset_spec(name)
    return Dataset(spec=spec, graph=spec.build_graph(scale))


def paper_table2() -> list[tuple[str, str, str, str, float]]:
    """The original Table 2 rows, for side-by-side reporting."""
    rows = []
    for name in dataset_names():
        spec = _SPECS[name]
        rows.append(
            (
                spec.name,
                spec.paper_nodes,
                spec.paper_edges,
                "undirected" if spec.undirected else "directed",
                spec.paper_avg_degree,
            )
        )
    return rows
