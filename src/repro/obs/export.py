"""Exporters: JSONL event stream, Prometheus text exposition, human report.

Three ways the same numbers leave the process:

* :func:`write_jsonl` — one JSON object per line: a ``meta`` header,
  every completed span (``{"type": "span", ...}``), and a final
  ``{"type": "metrics", "metrics": {...}}`` registry snapshot.  This is
  what ``--metrics-out PATH`` writes and what ``repro obs report``/
  ``repro obs prom`` read back.
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` / ``# HELP`` comments, ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` series for histograms), scrape-ready.
  :func:`validate_prometheus_text` is the matching format checker CI runs.
* :func:`render_report` — a deterministic human summary table: per-phase
  rollup, span leaderboard, counters, histogram percentiles.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Mapping, TextIO, Union

from repro.obs import runtime
from repro.obs.registry import MetricsRegistry

__all__ = [
    "read_jsonl",
    "render_report",
    "snapshot_to_prometheus",
    "to_prometheus",
    "validate_prometheus_text",
    "write_jsonl",
]

#: Schema version of the JSONL event stream.
JSONL_VERSION = 1

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_KNOWN_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def _prom_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_NAME_SANITIZE.sub('_', name)}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# JSONL event stream
# ----------------------------------------------------------------------
def write_jsonl(target: Union[str, Path, TextIO], *,
                registry: MetricsRegistry | None = None,
                spans: list[runtime.SpanRecord] | None = None,
                meta: Mapping[str, Any] | None = None) -> None:
    """Serialize spans + a registry snapshot as one JSONL event stream.

    Defaults to the live global runtime (what ``--metrics-out`` exports).
    """
    reg = registry if registry is not None else runtime.registry()
    span_list = spans if spans is not None else runtime.spans()
    header: dict[str, Any] = {
        "type": "meta",
        "version": JSONL_VERSION,
        "spans": len(span_list),
        "dropped_spans": runtime.dropped_spans() if spans is None else 0,
    }
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(span.as_dict(), sort_keys=True) for span in span_list)
    lines.append(json.dumps(
        {"type": "metrics", "metrics": reg.snapshot()}, sort_keys=True))
    text = "\n".join(lines) + "\n"
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)


def read_jsonl(path: Union[str, Path]) -> dict[str, Any]:
    """Parse a metrics JSONL file back into ``{meta, spans, metrics}``."""
    meta: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    for line_number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        text = line.strip()
        if not text:
            continue
        try:
            event = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_number}: invalid JSON: {exc}") from None
        kind = event.get("type")
        if kind == "meta":
            meta = event
        elif kind == "span":
            spans.append(event)
        elif kind == "metrics":
            metrics = event.get("metrics", {})
        else:
            raise ValueError(f"{path}:{line_number}: unknown event type {kind!r}")
    return {"meta": meta, "spans": spans, "metrics": metrics}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def to_prometheus(registry: MetricsRegistry | None = None, *,
                  namespace: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format."""
    reg = registry if registry is not None else runtime.registry()
    return snapshot_to_prometheus(reg.snapshot(), namespace=namespace)


def snapshot_to_prometheus(snapshot: Mapping[str, Mapping[str, Any]], *,
                           namespace: str = "repro") -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as Prometheus text."""
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        prom = _prom_name(name, namespace)
        if kind in ("counter", "gauge"):
            lines.append(f"# HELP {prom} {name}")
            lines.append(f"# TYPE {prom} {kind}")
            lines.append(f"{prom} {_format_value(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {prom} {name}")
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{prom}_sum {_format_value(data['sum'])}")
            lines.append(f"{prom}_count {data['count']}")
        else:
            raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_sample_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def _base_family(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate_prometheus_text(text: str) -> list[str]:
    """Check Prometheus text exposition syntax + histogram consistency.

    Returns a list of error strings (empty = valid): malformed comment or
    sample lines, unknown metric types, samples typed ``histogram`` missing
    their ``_bucket``/``_sum``/``_count`` series, non-monotone cumulative
    buckets, and ``+Inf`` buckets disagreeing with ``_count``.
    """
    errors: list[str] = []
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    seen_samples: set[str] = set()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    errors.append(f"line {line_number}: incomplete {parts[1]} comment")
                continue  # free-form comments are legal
            keyword, name = parts[1], parts[2]
            if not _METRIC_NAME.match(name):
                errors.append(f"line {line_number}: invalid metric name {name!r}")
                continue
            if keyword == "TYPE":
                if len(parts) < 4 or parts[3] not in _KNOWN_TYPES:
                    errors.append(
                        f"line {line_number}: unknown metric type "
                        f"{parts[3] if len(parts) > 3 else '<missing>'!r}")
                elif name in seen_samples:
                    errors.append(
                        f"line {line_number}: TYPE for {name!r} after its samples")
                else:
                    types[name] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            errors.append(f"line {line_number}: malformed sample line {line!r}")
            continue
        name = match.group("name")
        value = _parse_sample_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {line_number}: invalid sample value {match.group('value')!r}")
            continue
        label_text = match.group("labels")
        le: float | None = None
        if label_text:
            for pair in label_text.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                if not _LABEL_PAIR.match(pair):
                    errors.append(f"line {line_number}: malformed label {pair!r}")
                    continue
                key, _, quoted = pair.partition("=")
                if key == "le":
                    le = _parse_sample_value(quoted[1:-1])
        family = _base_family(name)
        seen_samples.add(family)
        if types.get(family) == "histogram":
            if name.endswith("_bucket"):
                if le is None:
                    errors.append(
                        f"line {line_number}: histogram bucket missing le label")
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif name.endswith("_count"):
                counts[family] = value
    for family, declared in types.items():
        if declared != "histogram":
            continue
        series = buckets.get(family)
        if not series:
            errors.append(f"histogram {family!r} has no _bucket series")
            continue
        if family not in counts:
            errors.append(f"histogram {family!r} has no _count sample")
        previous = -math.inf
        cumulative = -math.inf
        for le, value in series:
            if le < previous:
                errors.append(f"histogram {family!r}: le bounds out of order")
                break
            if value < cumulative:
                errors.append(
                    f"histogram {family!r}: cumulative bucket counts decrease")
                break
            previous, cumulative = le, value
        inf_buckets = [value for le, value in series if le == math.inf]
        if not inf_buckets:
            errors.append(f"histogram {family!r} is missing its +Inf bucket")
        elif family in counts and inf_buckets[-1] != counts[family]:
            errors.append(
                f"histogram {family!r}: +Inf bucket {inf_buckets[-1]} != "
                f"_count {counts[family]}")
    return errors


# ----------------------------------------------------------------------
# Human report
# ----------------------------------------------------------------------
def _aggregate_spans(spans: list[Mapping[str, Any]]) -> dict[str, dict[str, float]]:
    rollup: dict[str, dict[str, float]] = {}
    for span in spans:
        entry = rollup.setdefault(
            str(span["name"]), {"count": 0, "seconds": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["seconds"] += float(span["seconds"])
        entry["max"] = max(entry["max"], float(span["seconds"]))
    return rollup


def render_report(data: Mapping[str, Any]) -> str:
    """A human summary of a parsed metrics stream (see :func:`read_jsonl`)."""
    spans = list(data.get("spans", []))
    metrics: Mapping[str, Mapping[str, Any]] = data.get("metrics", {})
    lines: list[str] = []

    groups: dict[str, dict[str, float]] = {}
    for span in spans:
        group = str(span["name"]).split(".", 1)[0]
        entry = groups.setdefault(group, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += float(span["seconds"])
    if groups:
        lines.append("== phases ==")
        lines.append(f"{'phase':<12} {'spans':>8} {'total s':>12}")
        for group in sorted(groups):
            entry = groups[group]
            lines.append(
                f"{group:<12} {int(entry['count']):>8} {entry['seconds']:>12.4f}")
        lines.append("")

    rollup = _aggregate_spans(spans)
    if rollup:
        lines.append("== spans ==")
        lines.append(
            f"{'span':<28} {'count':>8} {'total s':>12} {'mean ms':>10} {'max ms':>10}")
        for name in sorted(rollup):
            entry = rollup[name]
            mean_ms = 1000.0 * entry["seconds"] / entry["count"]
            lines.append(
                f"{name:<28} {int(entry['count']):>8} {entry['seconds']:>12.4f} "
                f"{mean_ms:>10.3f} {1000.0 * entry['max']:>10.3f}")
        lines.append("")

    counters = {n: d for n, d in metrics.items() if d.get("type") == "counter"}
    gauges = {n: d for n, d in metrics.items() if d.get("type") == "gauge"}
    if counters or gauges:
        lines.append("== counters / gauges ==")
        for name in sorted(counters):
            lines.append(f"{name:<40} {_format_value(counters[name]['value']):>14}")
        for name in sorted(gauges):
            lines.append(
                f"{name:<40} {_format_value(gauges[name]['value']):>14} (gauge)")
        lines.append("")

    histograms = {n: d for n, d in metrics.items() if d.get("type") == "histogram"}
    if histograms:
        lines.append("== histograms ==")
        lines.append(
            f"{'histogram':<40} {'count':>8} {'p50':>10} {'p90':>10} {'p99':>10}")
        for name in sorted(histograms):
            data_h = histograms[name]
            lines.append(
                f"{name:<40} {data_h['count']:>8} {data_h['p50']:>10.4f} "
                f"{data_h['p90']:>10.4f} {data_h['p99']:>10.4f}")
        lines.append("")

    if not lines:
        return "no metrics recorded\n"
    return "\n".join(lines).rstrip() + "\n"
