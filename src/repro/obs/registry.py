"""Typed metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is the passive half of :mod:`repro.obs`: it only *stores*
numbers — the tracer in :mod:`repro.obs.runtime` decides when anything is
recorded, and the exporters in :mod:`repro.obs.export` decide how it
leaves the process.  Three properties matter here:

* **Deterministic.**  Histograms use fixed bucket bounds and report
  percentiles by linear interpolation inside the crossing bucket — no
  reservoir sampling, no randomness, so two identical runs export
  identical metric payloads (and instrumentation can never perturb an
  RNG stream).
* **Cheap.**  ``Counter.inc`` is one addition; ``Histogram.observe`` is
  one bisect.  Batch observation (:meth:`Histogram.observe_many`) takes
  a numpy array and buckets it with ``searchsorted`` + ``bincount`` so
  instrumenting a 10⁶-set RR batch costs microseconds.
* **Self-describing.**  Every metric snapshots to a plain JSON-able dict
  carrying its type, so exporters need no side tables.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Sequence, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "LATENCY_MS_BUCKETS",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
]

#: Request/operation latencies in milliseconds (50 µs .. 30 s).
LATENCY_MS_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

#: Span / phase durations in seconds (100 µs .. 5 min).
SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Discrete sizes (RR-set widths, shard sizes): powers of two up to 2^20.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(21))


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (pool sizes, cache occupancy)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with deterministic interpolated percentiles.

    ``bounds`` are the finite upper bucket edges (ascending, inclusive —
    Prometheus ``le`` semantics); one implicit overflow bucket catches
    everything above ``bounds[-1]``.  Percentiles interpolate linearly
    inside the bucket where the cumulative count crosses the target rank,
    taking ``0`` as the lower edge of the first bucket (all quantities we
    observe are non-negative); ranks landing in the overflow bucket clamp
    to ``bounds[-1]``.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float] = SECONDS_BUCKETS,
                 help: str = "") -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} bounds must be strictly ascending")
        self.name = name
        self.help = help
        self.bounds = edges
        self.counts: list[int] = [0] * (len(edges) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Union[Iterable[float], "np.ndarray[Any, Any]"]) -> None:
        """Bucket a whole array at once (vectorized; values are read-only)."""
        array = np.asarray(values, dtype=np.float64)
        if array.size == 0:
            return
        indices = np.searchsorted(self.bounds, array.ravel(), side="left")
        per_bucket = np.bincount(indices, minlength=len(self.counts))
        for i, extra in enumerate(per_bucket.tolist()):
            self.counts[i] += int(extra)
        self.sum += float(array.sum())
        self.count += int(array.size)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``) by in-bucket interpolation."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]; got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count and cumulative + bucket_count >= target:
                if i >= len(self.bounds):  # overflow bucket: clamp
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                return lower + (upper - lower) * (target - cumulative) / bucket_count
            cumulative += bucket_count
        return self.bounds[-1]  # pragma: no cover - unreachable when count > 0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with get-or-create registration (insertion-ordered)."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _register(self, name: str, kind: type, factory: Any) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric: Metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._register(name, Counter, lambda: Counter(name, help))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._register(name, Gauge, lambda: Gauge(name, help))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, bounds: Sequence[float] = SECONDS_BUCKETS,
                  help: str = "") -> Histogram:
        metric = self._register(name, Histogram, lambda: Histogram(name, bounds, help))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def clear(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every metric as a JSON-able ``{name: {"type": ..., ...}}`` dict."""
        return {name: metric.snapshot() for name, metric in self._metrics.items()}
