"""`repro.obs` — deterministic metrics, phase tracing, and exporters.

The observability substrate for the sampling/serving stack: a typed
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms with
interpolated p50/p90/p99 — no reservoir sampling, so exports are
deterministic), a span tracer (``with trace("kpt.estimate"): ...``) with a
zero-overhead no-op path when disabled, and three exporters (JSONL event
stream, Prometheus text exposition, human report table).

Enable with ``REPRO_METRICS=1`` (or ``obs.configure(enabled=True)``, or
the CLI's ``--metrics-out PATH``).  **Instrumentation never touches RNG
streams**: sketch bytes and tim seeds are byte-identical metrics-on vs
metrics-off (pinned by ``tests/obs/test_byte_identity.py``).

Typical library use::

    from repro import obs

    obs.configure(enabled=True)
    obs.reset()
    ...                                     # run instrumented work
    print(obs.phase_breakdown())            # {"kpt": {...}, "sampling": ...}
    text = obs.to_prometheus()              # scrape-ready exposition
    obs.write_jsonl("metrics.jsonl")        # spans + registry snapshot
"""

from repro.obs.export import (
    read_jsonl,
    render_report,
    snapshot_to_prometheus,
    to_prometheus,
    validate_prometheus_text,
    write_jsonl,
)
from repro.obs.registry import (
    LATENCY_MS_BUCKETS,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.runtime import (
    SpanRecord,
    add,
    configure,
    degraded,
    dropped_spans,
    enabled,
    gauge_set,
    now,
    observe,
    observe_many,
    phase_breakdown,
    registry,
    reset,
    spans,
    trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_MS_BUCKETS",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "SpanRecord",
    "add",
    "configure",
    "degraded",
    "dropped_spans",
    "enabled",
    "gauge_set",
    "now",
    "observe",
    "observe_many",
    "phase_breakdown",
    "read_jsonl",
    "registry",
    "render_report",
    "reset",
    "snapshot_to_prometheus",
    "spans",
    "to_prometheus",
    "trace",
    "validate_prometheus_text",
    "write_jsonl",
]
