"""The tracing runtime: a process-global switch, span tracer, and registry.

``trace("kpt.estimate")`` is the instrumentation primitive every hot-path
module uses::

    from repro.obs import trace

    with trace("kpt.estimate", k=k):
        ...

Disabled (the default, and whenever ``REPRO_METRICS`` is unset/falsy) the
call returns one shared no-op context manager — no allocation, no clock
read, no record — so instrumented code costs a single module-global bool
check.  Enabled, each span records nested wall-clock (and, when memory
accounting is switched on, RSS / traced-allocation deltas) into a global
:class:`~repro.obs.registry.MetricsRegistry` plus an event list the
exporters serialize.

**Hard invariant: instrumentation never touches RNG streams.**  Nothing in
this module (or anything it calls) draws randomness, so enabling metrics
cannot perturb sampling — ``tests/obs/test_byte_identity.py`` pins sketch
bytes and tim seeds obs-on vs obs-off.

Span names are dotted: the first component is the *phase group*
(``kpt.estimate`` and ``kpt.refine`` both roll up under ``kpt`` in
:func:`phase_breakdown`).  Groups in use: ``kpt``, ``sampling``,
``selection``, ``sketch``, ``repair``, ``serve``, ``tim``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Iterable, Union

import numpy as np

from repro.obs.registry import SECONDS_BUCKETS, Histogram, MetricsRegistry

__all__ = [
    "SpanRecord",
    "add",
    "configure",
    "degraded",
    "enabled",
    "gauge_set",
    "now",
    "observe",
    "observe_many",
    "phase_breakdown",
    "registry",
    "reset",
    "spans",
    "trace",
]

_ENV_VAR = "REPRO_METRICS"
_ENV_MEM_VAR = "REPRO_METRICS_MEM"
_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})

#: Completed spans kept in memory; beyond this they are counted, not stored.
_DEFAULT_SPAN_CAPACITY = 100_000

#: Prefix for the per-span duration histograms in the global registry.
SPAN_METRIC_PREFIX = "span."


def _env_flag(variable: str) -> bool:
    return os.environ.get(variable, "").strip().lower() in _TRUE_STRINGS


@dataclass
class SpanRecord:
    """One completed span: what ran, for how long, nested under what."""

    name: str
    seconds: float
    start: float  # seconds since the last reset() (monotonic clock)
    depth: int
    parent: str | None
    labels: dict[str, Any] = field(default_factory=dict)
    rss_kb_delta: int | None = None
    alloc_bytes: int | None = None

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "seconds": self.seconds,
            "start": self.start,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        if self.rss_kb_delta is not None:
            record["rss_kb_delta"] = self.rss_kb_delta
        if self.alloc_bytes is not None:
            record["alloc_bytes"] = self.alloc_bytes
        return record


class _Runtime:
    """Process-global tracer state (one instance, module-private)."""

    def __init__(self) -> None:
        self.enabled = _env_flag(_ENV_VAR)
        self.memory = _env_flag(_ENV_MEM_VAR)
        self.registry = MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.dropped_spans = 0
        self.span_capacity = _DEFAULT_SPAN_CAPACITY
        self.origin = time.perf_counter()
        self.local = threading.local()

    def stack(self) -> list[str]:
        stack = getattr(self.local, "stack", None)
        if stack is None:
            stack = []
            self.local.stack = stack
        return stack


_RUNTIME = _Runtime()


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _RUNTIME.enabled


def now() -> float:
    """The sanctioned monotonic clock (``time.perf_counter`` passthrough).

    Product code outside :mod:`repro.obs` times with this (or with
    :func:`trace` spans) so the RL601 lint rule can flag stray ad-hoc
    ``time.perf_counter()`` timing.  Always live, metrics on or off.
    """
    return time.perf_counter()


def configure(*, enabled: bool | None = None, memory: bool | None = None,
              span_capacity: int | None = None) -> None:
    """Flip the process-global switches (``None`` leaves a switch as-is)."""
    if enabled is not None:
        _RUNTIME.enabled = bool(enabled)
    if memory is not None:
        _RUNTIME.memory = bool(memory)
    if span_capacity is not None:
        if span_capacity < 0:
            raise ValueError(f"span_capacity must be >= 0; got {span_capacity}")
        _RUNTIME.span_capacity = span_capacity


def reset() -> None:
    """Drop every recorded metric and span; restart the span clock."""
    _RUNTIME.registry = MetricsRegistry()
    _RUNTIME.spans = []
    _RUNTIME.dropped_spans = 0
    _RUNTIME.origin = time.perf_counter()
    _RUNTIME.local = threading.local()


def registry() -> MetricsRegistry:
    """The process-global registry (live object, not a copy)."""
    return _RUNTIME.registry


def spans() -> list[SpanRecord]:
    """Completed spans since the last :func:`reset` (shared list)."""
    return _RUNTIME.spans


def dropped_spans() -> int:
    """Spans discarded because the capacity cap was hit."""
    return _RUNTIME.dropped_spans


def _rss_kb() -> int | None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _traced_alloc() -> int | None:
    import tracemalloc

    if not tracemalloc.is_tracing():
        return None
    current, _ = tracemalloc.get_traced_memory()
    return int(current)


class _NoopSpan:
    """The shared do-nothing span handed out whenever metrics are off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: TracebackType | None) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: times its ``with`` body and records on exit."""

    __slots__ = ("name", "labels", "_started", "_rss0", "_alloc0")

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self._started = 0.0
        self._rss0: int | None = None
        self._alloc0: int | None = None

    def __enter__(self) -> "_Span":
        _RUNTIME.stack().append(self.name)
        if _RUNTIME.memory:
            self._rss0 = _rss_kb()
            self._alloc0 = _traced_alloc()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: TracebackType | None) -> None:
        finished = time.perf_counter()
        stack = _RUNTIME.stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        seconds = finished - self._started
        _RUNTIME.registry.histogram(
            SPAN_METRIC_PREFIX + self.name + ".seconds", SECONDS_BUCKETS
        ).observe(seconds)
        rss_delta: int | None = None
        alloc_bytes: int | None = None
        if _RUNTIME.memory:
            rss1 = _rss_kb()
            if rss1 is not None and self._rss0 is not None:
                rss_delta = rss1 - self._rss0
            alloc1 = _traced_alloc()
            if alloc1 is not None and self._alloc0 is not None:
                alloc_bytes = alloc1 - self._alloc0
        if len(_RUNTIME.spans) >= _RUNTIME.span_capacity:
            _RUNTIME.dropped_spans += 1
            return None
        _RUNTIME.spans.append(SpanRecord(
            name=self.name,
            seconds=seconds,
            start=self._started - _RUNTIME.origin,
            depth=len(stack),
            parent=stack[-1] if stack else None,
            labels=self.labels,
            rss_kb_delta=rss_delta,
            alloc_bytes=alloc_bytes,
        ))
        return None


def trace(name: str, **labels: Any) -> Union[_Span, _NoopSpan]:
    """A context manager timing ``name``; a shared no-op when disabled."""
    if not _RUNTIME.enabled:
        return _NOOP_SPAN
    return _Span(name, labels)


# ----------------------------------------------------------------------
# Guarded recording helpers (no-ops when disabled)
# ----------------------------------------------------------------------
def add(name: str, amount: float = 1) -> None:
    """Increment counter ``name`` (created on first use) when enabled."""
    if _RUNTIME.enabled:
        _RUNTIME.registry.counter(name).inc(amount)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` when enabled."""
    if _RUNTIME.enabled:
        _RUNTIME.registry.gauge(name).set(value)


def degraded(kind: str) -> None:
    """Count one graceful-degradation event under ``degraded.<kind>``.

    One counter family for every fallback in the stack (``pool_inline``,
    ``warm_to_cold``, ``memory_evicted``, ...) so a dashboard can alert on
    *any* silent quality loss with a single query.
    """
    if _RUNTIME.enabled:
        _RUNTIME.registry.counter("degraded." + kind).inc(1)


def observe(name: str, value: float,
            bounds: tuple[float, ...] = SECONDS_BUCKETS) -> None:
    """Observe one value into histogram ``name`` when enabled."""
    if _RUNTIME.enabled:
        _RUNTIME.registry.histogram(name, bounds).observe(value)


def observe_many(name: str, values: "Iterable[float] | np.ndarray[Any, Any]",
                 bounds: tuple[float, ...] = SECONDS_BUCKETS) -> None:
    """Observe a whole array into histogram ``name`` when enabled."""
    if _RUNTIME.enabled:
        _RUNTIME.registry.histogram(name, bounds).observe_many(values)


def phase_breakdown(source: MetricsRegistry | None = None) -> dict[str, dict[str, Any]]:
    """Per-phase rollup from the span histograms.

    Groups ``span.<group>.<rest>.seconds`` histograms by ``<group>`` and
    returns ``{group: {"seconds": total, "count": spans}}`` — the additive
    payload the service's ``stats`` op exposes.  Empty when nothing has
    been recorded (metrics off).
    """
    reg = source if source is not None else _RUNTIME.registry
    breakdown: dict[str, dict[str, Any]] = {}
    for metric in reg.metrics():
        name = metric.name
        if not isinstance(metric, Histogram) or not name.startswith(SPAN_METRIC_PREFIX):
            continue
        span_name = name[len(SPAN_METRIC_PREFIX):]
        if span_name.endswith(".seconds"):
            span_name = span_name[: -len(".seconds")]
        group = span_name.split(".", 1)[0]
        entry = breakdown.setdefault(group, {"seconds": 0.0, "count": 0})
        entry["seconds"] += metric.sum
        entry["count"] += metric.count
    return breakdown
