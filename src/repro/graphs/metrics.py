"""Structural graph metrics beyond Table 2's basics.

Used to characterise workloads (the stand-ins should *look like* social
networks, not just match degree counts): strongly connected components,
clustering, and sampled distance statistics.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int, require

__all__ = [
    "strongly_connected_components",
    "largest_scc_size",
    "global_clustering_coefficient",
    "bfs_distances",
    "sampled_effective_diameter",
]


def strongly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Tarjan's SCC algorithm (iterative), components largest-first."""
    out_adj, _ = graph.out_adjacency()
    index_of = [-1] * graph.n
    low_link = [0] * graph.n
    on_stack = [False] * graph.n
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for start in range(graph.n):
        if index_of[start] != -1:
            continue
        # Explicit DFS frames: (node, iterator position).
        frames: list[list[int]] = [[start, 0]]
        index_of[start] = low_link[start] = counter
        counter += 1
        stack.append(start)
        on_stack[start] = True
        while frames:
            frame = frames[-1]
            node, position = frame
            neighbors = out_adj[node]
            advanced = False
            while position < len(neighbors):
                target = neighbors[position]
                position += 1
                if index_of[target] == -1:
                    frame[1] = position
                    index_of[target] = low_link[target] = counter
                    counter += 1
                    stack.append(target)
                    on_stack[target] = True
                    frames.append([target, 0])
                    advanced = True
                    break
                if on_stack[target]:
                    low_link[node] = min(low_link[node], index_of[target])
            if advanced:
                continue
            frames.pop()
            if frames:
                parent = frames[-1][0]
                low_link[parent] = min(low_link[parent], low_link[node])
            if low_link[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return sorted(components, key=len, reverse=True)


def largest_scc_size(graph: DiGraph) -> int:
    """Size of the largest strongly connected component."""
    components = strongly_connected_components(graph)
    return len(components[0]) if components else 0


def global_clustering_coefficient(graph: DiGraph) -> float:
    """Transitivity of the undirected skeleton: 3·triangles / open triads.

    Direction and parallel edges are collapsed first; returns 0 for graphs
    with no wedge.
    """
    neighbors: list[set[int]] = [set() for _ in range(graph.n)]
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u != v:
            neighbors[u].add(v)
            neighbors[v].add(u)
    closed = 0  # ordered wedge endpoints that are connected (6x triangles)
    wedges = 0
    for v in range(graph.n):
        degree = len(neighbors[v])
        wedges += degree * (degree - 1)
        for a in neighbors[v]:
            # Count closed wedges centred at v.
            closed += sum(1 for b in neighbors[v] if b != a and b in neighbors[a])
    if wedges == 0:
        return 0.0
    return closed / wedges


def bfs_distances(graph: DiGraph, source: int) -> np.ndarray:
    """Directed hop distances from ``source`` (-1 = unreachable)."""
    require(0 <= source < graph.n, "source out of range")
    out_adj, _ = graph.out_adjacency()
    distances = np.full(graph.n, -1, dtype=np.int64)
    distances[source] = 0
    queue = deque([source])
    while queue:
        current = queue.popleft()
        for target in out_adj[current]:
            if distances[target] == -1:
                distances[target] = distances[current] + 1
                queue.append(target)
    return distances


def sampled_effective_diameter(
    graph: DiGraph, num_sources: int = 50, percentile: float = 90.0, rng=None
) -> float:
    """The classic 'effective diameter': the ``percentile``-th percentile of
    finite pairwise BFS distances, estimated from sampled sources."""
    check_positive_int(num_sources, "num_sources")
    require(0.0 < percentile <= 100.0, "percentile must be in (0, 100]")
    source = resolve_rng(rng)
    num_sources = min(num_sources, graph.n)
    finite: list[int] = []
    for origin in source.sample_indices(graph.n, num_sources):
        distances = bfs_distances(graph, origin)
        reachable = distances[distances > 0]
        finite.extend(int(d) for d in reachable)
    if not finite:
        return 0.0
    return float(np.percentile(np.asarray(finite), percentile))
