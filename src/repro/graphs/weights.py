"""Edge-weighting schemes from the influence-maximization literature.

The paper's experiments (Section 7.1) fix edge probabilities as follows:

* **IC model** — the *weighted cascade* convention of [5, 10, 16, 30]:
  ``p(e) = 1 / indeg(v)`` where ``v`` is the node ``e`` points to.
* **LT model** — each in-neighbour of ``v`` receives a uniform random weight,
  then the weights of ``v``'s in-edges are normalised to sum to one
  (following [7]).

All functions return a *new* :class:`DiGraph` sharing topology with the
input; graphs are immutable.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_probability, require

__all__ = [
    "weighted_cascade",
    "constant_probability",
    "trivalency",
    "uniform_random_lt",
    "normalize_in_weights",
    "validate_lt_weights",
]


def weighted_cascade(graph: DiGraph) -> DiGraph:
    """Assign ``p(e) = 1 / indeg(dst(e))`` (the paper's IC setting)."""
    in_degrees = graph.in_degrees()
    # Every edge's destination has in-degree >= 1 by construction.
    prob = 1.0 / in_degrees[graph.dst]
    return graph.with_probabilities(prob)


def constant_probability(graph: DiGraph, p: float) -> DiGraph:
    """Assign the same probability ``p`` to every edge."""
    p = check_probability(p, "p")
    return graph.with_probabilities(np.full(graph.m, p))


def trivalency(graph: DiGraph, rng=None, values: tuple[float, ...] = (0.1, 0.01, 0.001)) -> DiGraph:
    """The trivalency model: each edge draws uniformly from ``values``.

    Used by several IC baselines (e.g. IRIE's evaluation) as a harder
    alternative to the weighted cascade.
    """
    require(len(values) > 0, "values must be non-empty")
    for value in values:
        check_probability(value, "trivalency value")
    source = resolve_rng(rng)
    choices = source.np.integers(0, len(values), size=graph.m)
    prob = np.asarray(values, dtype=np.float64)[choices]
    return graph.with_probabilities(prob)


def uniform_random_lt(graph: DiGraph, rng=None) -> DiGraph:
    """The paper's LT weighting: random in-weights normalised to sum to 1.

    For each node ``v``, every in-edge receives an independent U(0, 1]
    weight; the weights of ``v``'s in-edges are then divided by their sum.
    A node with no in-edges is untouched.
    """
    source = resolve_rng(rng)
    # U(0,1] avoids an all-zero in-neighbourhood with probability one.
    raw = 1.0 - source.np.random(graph.m)
    return _normalized_from_raw(graph, raw)


def normalize_in_weights(graph: DiGraph) -> DiGraph:
    """Rescale each node's in-edge weights to sum to one (keep ratios)."""
    return _normalized_from_raw(graph, graph.prob.copy())


def _normalized_from_raw(graph: DiGraph, raw: np.ndarray) -> DiGraph:
    sums = np.zeros(graph.n, dtype=np.float64)
    np.add.at(sums, graph.dst, raw)
    if np.any((sums == 0.0) & (graph.in_degrees() > 0)):
        raise ValueError("cannot normalise: a node's in-weights sum to zero")
    safe_sums = np.where(sums == 0.0, 1.0, sums)
    prob = raw / safe_sums[graph.dst]
    # Clamp rounding overshoot so DiGraph's [0, 1] validation never trips.
    np.clip(prob, 0.0, 1.0, out=prob)
    return graph.with_probabilities(prob)


def validate_lt_weights(graph: DiGraph, tolerance: float = 1e-9) -> None:
    """Raise unless every node's in-edge weights sum to at most ``1 + tol``.

    The LT model is only well defined under this constraint (the leftover
    ``1 - sum`` is the probability that the node's triggering set is empty).
    """
    sums = np.zeros(graph.n, dtype=np.float64)
    np.add.at(sums, graph.dst, graph.prob)
    worst = float(sums.max(initial=0.0))
    if worst > 1.0 + tolerance:
        offender = int(np.argmax(sums))
        raise ValueError(
            f"LT weights invalid: in-weights of node {offender} sum to {sums[offender]:.6f} > 1"
        )
