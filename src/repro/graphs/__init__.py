"""Graph substrate: CSR digraph, builders, generators, weights, transforms."""

from repro.graphs.builder import GraphBuilder, from_edges
from repro.graphs.delta import (
    GraphDelta,
    delete_edge,
    insert_edge,
    locate_edge,
    reweight_edge,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.fingerprint import graph_fingerprint
from repro.graphs.generators import (
    complete_digraph,
    cycle_digraph,
    forest_fire_digraph,
    gnm_random_digraph,
    gnp_random_digraph,
    paper_figure1_graph,
    path_digraph,
    planted_partition_digraph,
    powerlaw_out_digraph,
    preferential_attachment_graph,
    star_digraph,
    watts_strogatz_graph,
)
from repro.graphs.io import load_edge_list, parse_edge_lines, save_edge_list
from repro.graphs.metrics import (
    bfs_distances,
    global_clustering_coefficient,
    largest_scc_size,
    sampled_effective_diameter,
    strongly_connected_components,
)
from repro.graphs.stats import (
    GraphSummary,
    average_degree,
    degree_histogram,
    density,
    summarize,
)
from repro.graphs.transforms import (
    induced_subgraph,
    largest_weakly_connected_component,
    reachable_from,
    remove_self_loops,
    reverse_reachable_to,
    transpose,
    weakly_connected_components,
)
from repro.graphs.weights import (
    constant_probability,
    normalize_in_weights,
    trivalency,
    uniform_random_lt,
    validate_lt_weights,
    weighted_cascade,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "GraphDelta",
    "from_edges",
    "graph_fingerprint",
    "insert_edge",
    "delete_edge",
    "reweight_edge",
    "locate_edge",
    "complete_digraph",
    "cycle_digraph",
    "forest_fire_digraph",
    "gnm_random_digraph",
    "gnp_random_digraph",
    "paper_figure1_graph",
    "path_digraph",
    "planted_partition_digraph",
    "powerlaw_out_digraph",
    "preferential_attachment_graph",
    "star_digraph",
    "watts_strogatz_graph",
    "load_edge_list",
    "parse_edge_lines",
    "save_edge_list",
    "bfs_distances",
    "global_clustering_coefficient",
    "largest_scc_size",
    "sampled_effective_diameter",
    "strongly_connected_components",
    "GraphSummary",
    "average_degree",
    "degree_histogram",
    "density",
    "summarize",
    "induced_subgraph",
    "largest_weakly_connected_component",
    "reachable_from",
    "remove_self_loops",
    "reverse_reachable_to",
    "transpose",
    "weakly_connected_components",
    "constant_probability",
    "normalize_in_weights",
    "trivalency",
    "uniform_random_lt",
    "validate_lt_weights",
    "weighted_cascade",
]
