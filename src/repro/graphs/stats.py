"""Descriptive statistics used for Table 2 and workload characterisation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import DiGraph

__all__ = ["GraphSummary", "summarize", "degree_histogram", "average_degree", "density"]


@dataclass(frozen=True)
class GraphSummary:
    """One row of the paper's Table 2.

    ``num_edges`` follows the paper's listing convention (an undirected edge
    counts once) and ``average_degree`` is ``2·num_edges / n`` — the
    convention that reproduces every Table 2 entry (e.g. Epinions:
    2·509K/76K ≈ 13.4).
    """

    name: str
    num_nodes: int
    num_edges: int
    graph_type: str  # "directed" | "undirected"
    average_degree: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.graph_type,
            round(self.average_degree, 1),
        )


def summarize(graph: DiGraph, name: str, undirected: bool = False) -> GraphSummary:
    """Build a :class:`GraphSummary`; ``undirected`` halves the stored edge
    count (each undirected edge is materialised as two directed arcs)."""
    edges = graph.m // 2 if undirected else graph.m
    avg = 2.0 * edges / graph.n if graph.n else 0.0
    graph_type = "undirected" if undirected else "directed"
    return GraphSummary(name, graph.n, edges, graph_type, avg)


def degree_histogram(graph: DiGraph, direction: str = "out") -> np.ndarray:
    """``hist[d]`` = number of nodes with the given degree."""
    if direction == "out":
        degrees = graph.out_degrees()
    elif direction == "in":
        degrees = graph.in_degrees()
    elif direction == "total":
        degrees = graph.out_degrees() + graph.in_degrees()
    else:
        raise ValueError(f"direction must be 'out', 'in' or 'total'; got {direction!r}")
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def average_degree(graph: DiGraph) -> float:
    """Directed average degree ``m / n``."""
    return graph.m / graph.n if graph.n else 0.0


def density(graph: DiGraph) -> float:
    """Edge density ``m / (n (n - 1))``."""
    if graph.n < 2:
        return 0.0
    return graph.m / (graph.n * (graph.n - 1))
