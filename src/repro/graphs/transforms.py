"""Structure-preserving graph transforms: subgraphs, components, relabeling."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.validation import require

__all__ = [
    "transpose",
    "induced_subgraph",
    "remove_self_loops",
    "weakly_connected_components",
    "largest_weakly_connected_component",
    "reachable_from",
    "reverse_reachable_to",
]


def transpose(graph: DiGraph) -> DiGraph:
    """``G^T``: every edge reversed (Table 1 of the paper)."""
    return graph.transpose()


def induced_subgraph(graph: DiGraph, nodes) -> tuple[DiGraph, np.ndarray]:
    """Subgraph induced by ``nodes``; also returns the old-id array.

    Returned node ``i`` corresponds to ``mapping[i]`` in the original graph.
    """
    mapping = np.unique(np.asarray(list(nodes), dtype=np.int64))
    require(mapping.size > 0, "induced_subgraph needs at least one node")
    if mapping[0] < 0 or mapping[-1] >= graph.n:
        raise ValueError("node id out of range")
    new_id = np.full(graph.n, -1, dtype=np.int64)
    new_id[mapping] = np.arange(mapping.size)
    keep = (new_id[graph.src] >= 0) & (new_id[graph.dst] >= 0)
    sub = DiGraph(
        int(mapping.size),
        new_id[graph.src[keep]],
        new_id[graph.dst[keep]],
        graph.prob[keep],
    )
    return sub, mapping


def remove_self_loops(graph: DiGraph) -> DiGraph:
    """Drop any ``v -> v`` edges (no effect on influence semantics)."""
    keep = graph.src != graph.dst
    return DiGraph(graph.n, graph.src[keep], graph.dst[keep], graph.prob[keep])


def weakly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Connected components of the undirected skeleton, largest first."""
    parent = list(range(graph.n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    groups: dict[int, list[int]] = {}
    for node in range(graph.n):
        groups.setdefault(find(node), []).append(node)
    return sorted(groups.values(), key=len, reverse=True)


def largest_weakly_connected_component(graph: DiGraph) -> tuple[DiGraph, np.ndarray]:
    """The induced subgraph on the largest weakly connected component."""
    components = weakly_connected_components(graph)
    require(len(components) > 0, "graph has no nodes")
    return induced_subgraph(graph, components[0])


def reachable_from(graph: DiGraph, sources) -> set[int]:
    """Nodes reachable from ``sources`` along directed edges (BFS)."""
    out_adj, _ = graph.out_adjacency()
    visited = set(int(s) for s in sources)
    queue = deque(visited)
    while queue:
        current = queue.popleft()
        for neighbor in out_adj[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return visited


def reverse_reachable_to(graph: DiGraph, target: int) -> set[int]:
    """Nodes with a directed path *to* ``target`` (including itself).

    This is the deterministic superset of every RR set rooted at ``target``
    (Definition 1 applies coin flips on top of these edges), which makes it
    a convenient oracle in property tests.
    """
    in_adj, _ = graph.in_adjacency()
    visited = {int(target)}
    queue = deque(visited)
    while queue:
        current = queue.popleft()
        for neighbor in in_adj[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return visited
