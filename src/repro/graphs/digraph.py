"""Compressed-sparse-row directed graph.

This is the substrate every other subsystem builds on.  A :class:`DiGraph`
stores a fixed node set ``0..n-1`` and a fixed multiset of directed edges,
each carrying a float in ``[0, 1]`` that the diffusion models interpret as a
propagation probability (IC) or an influence weight (LT).

Both adjacency directions are materialised as CSR arrays because the two
halves of the system walk the graph in opposite directions:

* forward simulation of a cascade walks *out*-edges of ``G``;
* RR-set sampling walks *in*-edges (i.e. out-edges of the transpose ``G^T``
  from the paper's Table 1).

The per-node Python adjacency lists (:meth:`DiGraph.in_adjacency` /
:meth:`DiGraph.out_adjacency`) are cached lazily; the tight sampling loops
are measurably faster on plain lists than on repeated numpy slicing for the
small frontier sizes typical of RR sets.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.validation import check_node, require

__all__ = ["DiGraph"]


class DiGraph:
    """Immutable directed graph in CSR form with per-edge probabilities.

    Instances are normally produced by :class:`repro.graphs.builder
    .GraphBuilder`, the generators in :mod:`repro.graphs.generators`, or
    :func:`repro.graphs.io.load_edge_list`; the constructor is public for
    power users who already hold edge arrays.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``; node ids are ``0..n-1``.
    src, dst:
        Integer arrays of equal length ``m`` giving each edge's endpoints.
    prob:
        Float array of length ``m``; ``prob[i]`` is the propagation
        probability / influence weight of edge ``src[i] -> dst[i]``.
        Defaults to all ones.
    """

    __slots__ = (
        "n",
        "m",
        "src",
        "dst",
        "prob",
        "out_ptr",
        "out_idx",
        "out_prob",
        "in_ptr",
        "in_idx",
        "in_prob",
        "_in_adj_cache",
        "_out_adj_cache",
        "_fingerprint_cache",
    )

    def __init__(self, num_nodes: int, src, dst, prob=None):
        require(num_nodes >= 0, "num_nodes must be non-negative")
        self.n = int(num_nodes)
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        require(self.src.shape == self.dst.shape, "src/dst length mismatch")
        self.m = int(self.src.size)
        if prob is None:
            self.prob = np.ones(self.m, dtype=np.float64)
        else:
            self.prob = np.ascontiguousarray(prob, dtype=np.float64)
            require(self.prob.size == self.m, "prob length mismatch")
        if self.m > 0:
            if self.src.min() < 0 or self.src.max() >= self.n:
                raise ValueError("src node id out of range")
            if self.dst.min() < 0 or self.dst.max() >= self.n:
                raise ValueError("dst node id out of range")
            lo, hi = float(self.prob.min()), float(self.prob.max())
            if lo < 0.0 or hi > 1.0:
                raise ValueError(f"edge probabilities must lie in [0, 1]; saw [{lo}, {hi}]")

        self.out_ptr, self.out_idx, self.out_prob = self._build_csr(self.src, self.dst)
        self.in_ptr, self.in_idx, self.in_prob = self._build_csr(self.dst, self.src)
        self._in_adj_cache = None
        self._out_adj_cache = None
        self._fingerprint_cache = None

    def _build_csr(self, keys: np.ndarray, values: np.ndarray):
        """CSR arrays grouping ``values``/``prob`` by ``keys``."""
        counts = np.bincount(keys, minlength=self.n)
        ptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        order = np.argsort(keys, kind="stable")
        return ptr, np.ascontiguousarray(values[order]), np.ascontiguousarray(self.prob[order])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (an undirected input contributes 2)."""
        return self.m

    def nodes(self) -> range:
        """Iterable of node ids."""
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(u, v, p)`` triples in edge-id order."""
        for i in range(self.m):
            yield int(self.src[i]), int(self.dst[i]), float(self.prob[i])

    def out_degree(self, v: int) -> int:
        """Out-degree of ``v``."""
        v = check_node(v, self.n)
        return int(self.out_ptr[v + 1] - self.out_ptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        v = check_node(v, self.n)
        return int(self.in_ptr[v + 1] - self.in_ptr[v])

    def out_degrees(self) -> np.ndarray:
        """All out-degrees as an int64 array."""
        return np.diff(self.out_ptr)

    def in_degrees(self) -> np.ndarray:
        """All in-degrees as an int64 array."""
        return np.diff(self.in_ptr)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Targets of ``v``'s out-edges (numpy view)."""
        v = check_node(v, self.n)
        return self.out_idx[self.out_ptr[v] : self.out_ptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of ``v``'s in-edges (numpy view)."""
        v = check_node(v, self.n)
        return self.in_idx[self.in_ptr[v] : self.in_ptr[v + 1]]

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, probabilities)`` of ``v``'s out-edges."""
        v = check_node(v, self.n)
        lo, hi = self.out_ptr[v], self.out_ptr[v + 1]
        return self.out_idx[lo:hi], self.out_prob[lo:hi]

    def in_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, probabilities)`` of ``v``'s in-edges."""
        v = check_node(v, self.n)
        lo, hi = self.in_ptr[v], self.in_ptr[v + 1]
        return self.in_idx[lo:hi], self.in_prob[lo:hi]

    # ------------------------------------------------------------------
    # Cached Python adjacency (hot-loop fast path)
    # ------------------------------------------------------------------
    def in_adjacency(self) -> tuple[list[list[int]], list[list[float]]]:
        """Per-node in-neighbour and in-probability lists (cached)."""
        if self._in_adj_cache is None:
            self._in_adj_cache = self._to_lists(self.in_ptr, self.in_idx, self.in_prob)
        return self._in_adj_cache

    def out_adjacency(self) -> tuple[list[list[int]], list[list[float]]]:
        """Per-node out-neighbour and out-probability lists (cached)."""
        if self._out_adj_cache is None:
            self._out_adj_cache = self._to_lists(self.out_ptr, self.out_idx, self.out_prob)
        return self._out_adj_cache

    def _to_lists(self, ptr, idx, prob):
        idx_list = idx.tolist()
        prob_list = prob.tolist()
        ptr_list = ptr.tolist()
        neighbors = [idx_list[ptr_list[v] : ptr_list[v + 1]] for v in range(self.n)]
        probs = [prob_list[ptr_list[v] : ptr_list[v + 1]] for v in range(self.n)]
        return neighbors, probs

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_probabilities(self, prob) -> "DiGraph":
        """Same topology with a replacement per-edge probability array."""
        return DiGraph(self.n, self.src, self.dst, prob)

    def transpose(self) -> "DiGraph":
        """The transpose graph ``G^T`` (every edge reversed, same weights)."""
        return DiGraph(self.n, self.dst, self.src, self.prob)

    def copy(self) -> "DiGraph":
        """An independent copy."""
        return DiGraph(self.n, self.src.copy(), self.dst.copy(), self.prob.copy())

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash over the CSR arrays and probabilities (cached).

        See :func:`repro.graphs.fingerprint.graph_fingerprint`.  The graph is
        immutable, so the digest is computed once and reused; it keys the
        sketch cache in :mod:`repro.sketch` and validates persisted sketches
        against the graph they are loaded for.
        """
        if self._fingerprint_cache is None:
            from repro.graphs.fingerprint import graph_fingerprint

            self._fingerprint_cache = graph_fingerprint(self)
        return self._fingerprint_cache

    # ------------------------------------------------------------------
    # Comparison / debugging
    # ------------------------------------------------------------------
    def edge_set(self) -> set[tuple[int, int]]:
        """Set of ``(u, v)`` pairs; collapses parallel edges."""
        return set(zip(self.src.tolist(), self.dst.tolist()))

    def same_structure(self, other: "DiGraph") -> bool:
        """True when node count and the (sorted) edge multisets agree."""
        if self.n != other.n or self.m != other.m:
            return False
        mine = sorted(zip(self.src.tolist(), self.dst.tolist(), self.prob.tolist()))
        theirs = sorted(zip(other.src.tolist(), other.dst.tolist(), other.prob.tolist()))
        return mine == theirs

    def has_edge(self, u: int, v: int) -> bool:
        """True when at least one ``u -> v`` edge exists."""
        u = check_node(u, self.n)
        v = check_node(v, self.n)
        lo, hi = self.out_ptr[u], self.out_ptr[u + 1]
        return bool(np.any(self.out_idx[lo:hi] == v))

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of the ``u -> v`` edge (first match); KeyError if absent."""
        u = check_node(u, self.n)
        v = check_node(v, self.n)
        lo, hi = self.out_ptr[u], self.out_ptr[u + 1]
        matches = np.flatnonzero(self.out_idx[lo:hi] == v)
        if matches.size == 0:
            raise KeyError(f"no edge {u} -> {v}")
        return float(self.out_prob[lo + matches[0]])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.n}, m={self.m})"
