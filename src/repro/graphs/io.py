"""Plain-text edge-list I/O.

The format matches the SNAP-style files the paper's datasets ship in:
one ``u v`` (or ``u v p``) pair per line, ``#`` comments, arbitrary
whitespace.  Node labels may be arbitrary non-negative integers or strings;
they are compacted to ``0..n-1`` and the mapping is returned.
"""

from __future__ import annotations

import os
from typing import IO

import numpy as np

from repro.graphs.digraph import DiGraph

__all__ = ["load_edge_list", "save_edge_list", "parse_edge_lines"]


def parse_edge_lines(
    lines, directed: bool = True, comment: str = "#", default_prob: float = 1.0
) -> tuple[DiGraph, dict]:
    """Parse an iterable of edge-list lines.

    Returns ``(graph, label_to_id)``.  Labels are compacted in first-seen
    order, so round-tripping a file written by :func:`save_edge_list`
    preserves ids.
    """
    label_to_id: dict = {}
    src: list[int] = []
    dst: list[int] = []
    prob: list[float] = []

    def node_id(label: str) -> int:
        if label not in label_to_id:
            label_to_id[label] = len(label_to_id)
        return label_to_id[label]

    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        fields = line.split()
        if len(fields) not in (2, 3):
            raise ValueError(f"line {line_number}: expected 'u v [p]'; got {line!r}")
        u = node_id(fields[0])
        v = node_id(fields[1])
        p = float(fields[2]) if len(fields) == 3 else default_prob
        src.append(u)
        dst.append(v)
        prob.append(p)
        if not directed:
            src.append(v)
            dst.append(u)
            prob.append(p)

    n = len(label_to_id)
    graph = DiGraph(n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64), np.asarray(prob))
    return graph, label_to_id


def load_edge_list(
    path: str | os.PathLike,
    directed: bool = True,
    comment: str = "#",
    default_prob: float = 1.0,
) -> tuple[DiGraph, dict]:
    """Load an edge-list file; see :func:`parse_edge_lines`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_lines(handle, directed=directed, comment=comment, default_prob=default_prob)


def save_edge_list(
    graph: DiGraph, path: str | os.PathLike, write_probabilities: bool = True
) -> None:
    """Write ``u v p`` lines (directed form; every stored edge once)."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_edges(graph, handle, write_probabilities)


def _write_edges(graph: DiGraph, handle: IO[str], write_probabilities: bool) -> None:
    handle.write(f"# repro edge list: n={graph.n} m={graph.m}\n")
    for u, v, p in graph.edges():
        if write_probabilities:
            handle.write(f"{u} {v} {p:.10g}\n")
        else:
            handle.write(f"{u} {v}\n")
