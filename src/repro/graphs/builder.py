"""Incremental construction of :class:`~repro.graphs.digraph.DiGraph`.

The builder accumulates edges in Python lists (cheap appends) and converts
to numpy arrays once at :meth:`GraphBuilder.build`.  It also owns the
edge-hygiene policies — self-loop and duplicate handling — so the CSR class
can stay a dumb, always-valid container.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.validation import check_probability, require

__all__ = ["GraphBuilder", "from_edges"]


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`DiGraph`.

    Parameters
    ----------
    num_nodes:
        Fixed node count, or ``None`` to infer ``max(id) + 1`` at build time.
    allow_self_loops:
        When False (default) self-loops raise at insertion.  Self-loops never
        affect influence spread (a node cannot re-activate itself) so the
        default keeps graphs clean.
    deduplicate:
        Duplicate-edge policy applied at build time: ``"error"`` (default),
        ``"keep"`` (retain parallel edges), ``"first"`` or ``"last"`` (retain
        one occurrence), or ``"max"`` (retain the largest probability).
    """

    _DEDUP_POLICIES = ("error", "keep", "first", "last", "max")

    def __init__(
        self,
        num_nodes: int | None = None,
        allow_self_loops: bool = False,
        deduplicate: str = "error",
    ):
        require(
            deduplicate in self._DEDUP_POLICIES,
            f"deduplicate must be one of {self._DEDUP_POLICIES}; got {deduplicate!r}",
        )
        if num_nodes is not None:
            require(num_nodes >= 0, "num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._allow_self_loops = allow_self_loops
        self._deduplicate = deduplicate
        self._src: list[int] = []
        self._dst: list[int] = []
        self._prob: list[float] = []

    def __len__(self) -> int:
        return len(self._src)

    def add_edge(self, u: int, v: int, prob: float = 1.0) -> "GraphBuilder":
        """Append a directed edge ``u -> v``; returns self for chaining."""
        u, v = int(u), int(v)
        require(u >= 0 and v >= 0, "node ids must be non-negative")
        if self._num_nodes is not None:
            require(
                u < self._num_nodes and v < self._num_nodes,
                f"edge ({u}, {v}) exceeds num_nodes={self._num_nodes}",
            )
        if u == v and not self._allow_self_loops:
            raise ValueError(f"self-loop at node {u} (allow_self_loops=False)")
        self._src.append(u)
        self._dst.append(v)
        self._prob.append(check_probability(prob, "edge probability"))
        return self

    def add_undirected_edge(self, u: int, v: int, prob: float = 1.0) -> "GraphBuilder":
        """Append both ``u -> v`` and ``v -> u`` with the same probability."""
        self.add_edge(u, v, prob)
        self.add_edge(v, u, prob)
        return self

    def add_edges_from(
        self, edges: Iterable[tuple], undirected: bool = False
    ) -> "GraphBuilder":
        """Append ``(u, v)`` or ``(u, v, prob)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                prob = 1.0
            elif len(edge) == 3:
                u, v, prob = edge
            else:
                raise ValueError(f"edge tuple must have 2 or 3 fields; got {edge!r}")
            if undirected:
                self.add_undirected_edge(u, v, prob)
            else:
                self.add_edge(u, v, prob)
        return self

    def build(self) -> DiGraph:
        """Materialise the accumulated edges as a :class:`DiGraph`."""
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        prob = np.asarray(self._prob, dtype=np.float64)
        if self._num_nodes is not None:
            n = self._num_nodes
        elif src.size > 0:
            n = int(max(src.max(), dst.max())) + 1
        else:
            n = 0
        if self._deduplicate != "keep" and src.size > 0:
            src, dst, prob = self._apply_dedup(src, dst, prob)
        return DiGraph(n, src, dst, prob)

    def _apply_dedup(self, src, dst, prob):
        pairs = src * (int(dst.max()) + 1) + dst
        unique, first_index, counts = np.unique(pairs, return_index=True, return_counts=True)
        if counts.max() == 1:
            return src, dst, prob
        if self._deduplicate == "error":
            dup = int(np.argmax(counts > 1))
            u, v = int(src[first_index[dup]]), int(dst[first_index[dup]])
            raise ValueError(f"duplicate edge ({u}, {v}); pass deduplicate='keep'/'first'/'last'/'max'")
        if self._deduplicate == "first":
            keep = np.sort(first_index)
            return src[keep], dst[keep], prob[keep]
        if self._deduplicate == "last":
            # np.unique keeps first occurrences; reverse to keep last ones.
            reversed_pairs = pairs[::-1]
            _, rev_index = np.unique(reversed_pairs, return_index=True)
            keep = np.sort(pairs.size - 1 - rev_index)
            return src[keep], dst[keep], prob[keep]
        # "max": for each pair keep the occurrence with the largest probability.
        order = np.lexsort((-prob, pairs))
        sorted_pairs = pairs[order]
        is_first = np.ones(sorted_pairs.size, dtype=bool)
        is_first[1:] = sorted_pairs[1:] != sorted_pairs[:-1]
        keep = np.sort(order[is_first])
        return src[keep], dst[keep], prob[keep]


def from_edges(
    edges: Iterable[tuple],
    num_nodes: int | None = None,
    undirected: bool = False,
    deduplicate: str = "error",
) -> DiGraph:
    """One-shot convenience wrapper around :class:`GraphBuilder`."""
    builder = GraphBuilder(num_nodes=num_nodes, deduplicate=deduplicate)
    builder.add_edges_from(edges, undirected=undirected)
    return builder.build()
