"""Stable content fingerprint for :class:`~repro.graphs.digraph.DiGraph`.

The fingerprint is a SHA-256 digest over the graph's *canonical CSR content*
— node count, edge count, ``out_ptr``/``out_idx``/``out_prob`` — so two
graphs hash identically exactly when their adjacency structure and per-edge
probabilities agree byte for byte.  It is the key that binds a persisted RR
sketch (:mod:`repro.sketch`) to the graph it was sampled from: the sketch
cache uses it to look up indexes, and :func:`repro.sketch.persistence
.load_sketch` refuses to load a sketch whose recorded fingerprint does not
match the graph it is being attached to.

Within one node's CSR slice the neighbour order follows edge *input* order
(the CSR build sorts stably by source), so re-ordering the input edge list
can change the fingerprint even though the edge multiset is unchanged.
That conservatism is deliberate: a false mismatch costs one rebuild, a
false match would silently serve spread estimates for the wrong graph.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["graph_fingerprint"]

#: Domain separator; bump when the hashed content or layout changes.
_FINGERPRINT_DOMAIN = b"repro.graphs.fingerprint/v1"


def graph_fingerprint(graph) -> str:
    """Hex SHA-256 digest of the graph's CSR arrays and probabilities.

    Deterministic across processes and platforms for a given graph content:
    the hashed arrays have fixed dtypes (``int64`` pointers/indices,
    ``float64`` probabilities) and little-endian byte order is enforced
    before hashing.
    """
    digest = hashlib.sha256()
    digest.update(_FINGERPRINT_DOMAIN)
    header = np.array([graph.n, graph.m], dtype="<i8")
    digest.update(header.tobytes())
    for array, dtype in (
        (graph.out_ptr, "<i8"),
        (graph.out_idx, "<i8"),
        (graph.out_prob, "<f8"),
    ):
        digest.update(np.ascontiguousarray(array, dtype=dtype).tobytes())
    return digest.hexdigest()
