"""Synthetic graph generators.

Two roles:

* tiny deterministic fixtures (paths, stars, cliques, the paper's Figure 1
  example) used throughout the test suite, and
* random social-network generators (preferential attachment, power-law
  configuration, Watts-Strogatz, planted partition, forest fire) used by
  :mod:`repro.datasets` to build scaled stand-ins for the paper's five
  datasets (see DESIGN.md §3 for the substitution rationale).

All generators return unweighted graphs (``p = 1``); callers apply a scheme
from :mod:`repro.graphs.weights` afterwards, mirroring how the paper fixes
probabilities per model rather than per dataset.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.builder import GraphBuilder
from repro.graphs.digraph import DiGraph
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_probability, check_positive_int, require

__all__ = [
    "path_digraph",
    "cycle_digraph",
    "star_digraph",
    "complete_digraph",
    "paper_figure1_graph",
    "gnp_random_digraph",
    "gnm_random_digraph",
    "preferential_attachment_graph",
    "powerlaw_out_digraph",
    "watts_strogatz_graph",
    "planted_partition_digraph",
    "forest_fire_digraph",
]


# ----------------------------------------------------------------------
# Deterministic fixtures
# ----------------------------------------------------------------------
def path_digraph(n: int, prob: float = 1.0) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    check_positive_int(n, "n")
    builder = GraphBuilder(num_nodes=n)
    for u in range(n - 1):
        builder.add_edge(u, u + 1, prob)
    return builder.build()


def cycle_digraph(n: int, prob: float = 1.0) -> DiGraph:
    """Directed cycle on ``n >= 2`` nodes."""
    require(n >= 2, "cycle needs at least 2 nodes")
    builder = GraphBuilder(num_nodes=n)
    for u in range(n):
        builder.add_edge(u, (u + 1) % n, prob)
    return builder.build()


def star_digraph(n: int, prob: float = 1.0, outward: bool = True) -> DiGraph:
    """Star with hub 0; ``outward`` points hub -> leaves, else leaves -> hub."""
    require(n >= 2, "star needs at least 2 nodes")
    builder = GraphBuilder(num_nodes=n)
    for leaf in range(1, n):
        if outward:
            builder.add_edge(0, leaf, prob)
        else:
            builder.add_edge(leaf, 0, prob)
    return builder.build()


def complete_digraph(n: int, prob: float = 1.0) -> DiGraph:
    """All ``n(n-1)`` directed edges."""
    check_positive_int(n, "n")
    builder = GraphBuilder(num_nodes=n)
    for u in range(n):
        for v in range(n):
            if u != v:
                builder.add_edge(u, v, prob)
    return builder.build()


def paper_figure1_graph() -> DiGraph:
    """The four-node example of the paper's Figure 1.

    Nodes 0..3 stand for v1..v4.  Edges: v2->v1 (0.01), v2->v4 (0.01),
    v4->v1 (1.0), v3->v2 (0.01), v1->v3 (0.01) — exactly the five arrows
    drawn in the figure with their printed probabilities.
    """
    builder = GraphBuilder(num_nodes=4)
    builder.add_edge(1, 0, 0.01)
    builder.add_edge(1, 3, 0.01)
    builder.add_edge(3, 0, 1.0)
    builder.add_edge(2, 1, 0.01)
    builder.add_edge(0, 2, 0.01)
    return builder.build()


# ----------------------------------------------------------------------
# Random generators
# ----------------------------------------------------------------------
def gnp_random_digraph(n: int, p: float, rng=None) -> DiGraph:
    """Erdős–Rényi G(n, p) digraph (no self-loops)."""
    check_positive_int(n, "n")
    check_probability(p, "p")
    source = resolve_rng(rng)
    expected = p * n * (n - 1)
    if expected > 5_000_000:
        raise ValueError("G(n, p) request too large; use gnm_random_digraph")
    mask = source.np.random((n, n)) < p
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return DiGraph(n, src, dst)


def gnm_random_digraph(n: int, m: int, rng=None) -> DiGraph:
    """Uniform digraph with exactly ``m`` distinct non-loop edges."""
    check_positive_int(n, "n")
    require(m >= 0, "m must be non-negative")
    max_edges = n * (n - 1)
    require(m <= max_edges, f"m={m} exceeds the {max_edges} possible edges")
    source = resolve_rng(rng)
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    # Rejection sampling on edge codes in [0, n(n-1)); each round keeps the
    # distinct codes found so far, so this terminates quickly for m << n^2.
    while chosen.size < m:
        need = m - chosen.size
        draw = source.np.integers(0, max_edges, size=int(need * 1.2) + 8)
        chosen = np.unique(np.concatenate([chosen, draw]))
        if chosen.size > m:
            chosen = source.np.permutation(chosen)[:m]
            chosen = np.unique(chosen)  # re-sort for determinism
    src = chosen // (n - 1)
    rem = chosen % (n - 1)
    dst = np.where(rem < src, rem, rem + 1)
    return DiGraph(n, src, dst)


def preferential_attachment_graph(
    n: int, edges_per_node: int, rng=None, directed: bool = False
) -> DiGraph:
    """Barabási–Albert preferential attachment.

    Grows from a seed clique of ``edges_per_node + 1`` nodes; each new node
    attaches to ``edges_per_node`` distinct existing nodes chosen with
    probability proportional to degree.  With ``directed=False`` (the
    default, matching citation-style datasets such as NetHEPT and DBLP) each
    attachment contributes both edge directions; with ``directed=True`` the
    new node points at its targets only.
    """
    check_positive_int(n, "n")
    check_positive_int(edges_per_node, "edges_per_node")
    require(n > edges_per_node, "n must exceed edges_per_node")
    source = resolve_rng(rng)
    builder = GraphBuilder(num_nodes=n, deduplicate="first")
    # Repeated-nodes trick: each endpoint occurrence is one lottery ticket.
    repeated: list[int] = []
    seed_size = edges_per_node + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            builder.add_undirected_edge(u, v)
            repeated.extend((u, v))
    for new_node in range(seed_size, n):
        targets: set[int] = set()
        while len(targets) < edges_per_node:
            targets.add(repeated[source.randrange(len(repeated))])
        for target in targets:
            if directed:
                builder.add_edge(new_node, target)
            else:
                builder.add_undirected_edge(new_node, target)
            repeated.extend((new_node, target))
    return builder.build()


def powerlaw_out_digraph(
    n: int,
    average_degree: float,
    exponent: float = 2.5,
    rng=None,
    max_degree: int | None = None,
) -> DiGraph:
    """Directed configuration-style graph with power-law out-degrees.

    Out-degrees are drawn from a truncated zeta distribution with the given
    ``exponent`` and rescaled so the realised mean approximates
    ``average_degree``; targets are chosen preferentially (by current
    in-degree plus one) so in-degrees are also heavy-tailed, as in real
    follower graphs such as Twitter's.
    """
    check_positive_int(n, "n")
    require(average_degree > 0, "average_degree must be positive")
    require(exponent > 1.0, "exponent must exceed 1")
    source = resolve_rng(rng)
    if max_degree is None:
        max_degree = max(4, int(np.sqrt(n) * 4))
    max_degree = min(max_degree, n - 1)

    support = np.arange(1, max_degree + 1, dtype=np.float64)
    pmf = support ** (-exponent)
    pmf /= pmf.sum()
    mean = float((support * pmf).sum())
    degrees = source.np.choice(np.arange(1, max_degree + 1), size=n, p=pmf)
    scale = average_degree / mean
    degrees = np.maximum(1, np.round(degrees * scale).astype(np.int64))
    degrees = np.minimum(degrees, n - 1)

    # Preferential target selection via one shared ticket list.
    tickets = list(range(n))  # every node starts with one ticket
    src_list: list[int] = []
    dst_list: list[int] = []
    for u in source.np.permutation(n).tolist():
        wanted = int(degrees[u])
        targets: set[int] = set()
        attempts = 0
        while len(targets) < wanted and attempts < wanted * 20:
            candidate = tickets[source.randrange(len(tickets))]
            attempts += 1
            if candidate != u:
                targets.add(candidate)
        for v in targets:
            src_list.append(u)
            dst_list.append(v)
            tickets.append(v)
    return DiGraph(n, np.asarray(src_list), np.asarray(dst_list))


def watts_strogatz_graph(n: int, lattice_degree: int, beta: float, rng=None) -> DiGraph:
    """Watts–Strogatz small world (undirected; both edge directions stored)."""
    check_positive_int(n, "n")
    require(lattice_degree % 2 == 0, "lattice_degree must be even")
    require(0 < lattice_degree < n, "need 0 < lattice_degree < n")
    check_probability(beta, "beta")
    source = resolve_rng(rng)
    edges: set[tuple[int, int]] = set()
    half = lattice_degree // 2
    for u in range(n):
        for offset in range(1, half + 1):
            v = (u + offset) % n
            if source.random() < beta:
                while True:
                    w = source.randrange(n)
                    key = (min(u, w), max(u, w))
                    if w != u and key not in edges:
                        edges.add(key)
                        break
            else:
                edges.add((min(u, v), max(u, v)))
    builder = GraphBuilder(num_nodes=n, deduplicate="first")
    for u, v in sorted(edges):
        builder.add_undirected_edge(u, v)
    return builder.build()


def planted_partition_digraph(
    n: int, num_communities: int, p_in: float, p_out: float, rng=None
) -> DiGraph:
    """Planted-partition digraph: dense blocks, sparse cross edges.

    Used to exercise community-structure workloads (the motivation behind
    community-based heuristics such as Wang et al. [31]).
    """
    check_positive_int(n, "n")
    check_positive_int(num_communities, "num_communities")
    require(num_communities <= n, "more communities than nodes")
    check_probability(p_in, "p_in")
    check_probability(p_out, "p_out")
    source = resolve_rng(rng)
    membership = np.arange(n) % num_communities
    same = membership[:, None] == membership[None, :]
    draws = source.np.random((n, n))
    mask = np.where(same, draws < p_in, draws < p_out)
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return DiGraph(n, src, dst)


def forest_fire_digraph(n: int, forward_prob: float = 0.35, rng=None) -> DiGraph:
    """Leskovec's forest-fire model (simplified, forward burning only).

    Produces the shrinking-diameter, heavy-tailed structure typical of real
    social graphs; each arriving node links to an ambassador and recursively
    "burns" a geometric number of the ambassador's out-neighbours.
    """
    check_positive_int(n, "n")
    check_probability(forward_prob, "forward_prob")
    source = resolve_rng(rng)
    out_lists: list[list[int]] = [[] for _ in range(n)]
    src_list: list[int] = []
    dst_list: list[int] = []

    def link(u: int, v: int) -> None:
        out_lists[u].append(v)
        src_list.append(u)
        dst_list.append(v)

    for new_node in range(1, n):
        ambassador = source.randrange(new_node)
        visited = {ambassador}
        frontier = [ambassador]
        link(new_node, ambassador)
        while frontier:
            current = frontier.pop()
            burn_count = 0
            # Geometric(1 - forward_prob) number of neighbours to burn.
            while source.random() < forward_prob:
                burn_count += 1
            candidates = [w for w in out_lists[current] if w not in visited]
            source.py.shuffle(candidates)
            for w in candidates[:burn_count]:
                visited.add(w)
                link(new_node, w)
                frontier.append(w)
    return DiGraph(n, np.asarray(src_list), np.asarray(dst_list))
