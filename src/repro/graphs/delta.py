"""Single-edge graph mutations with CSR re-materialization.

:class:`~repro.graphs.digraph.DiGraph` is immutable by design — every other
subsystem keys caches and persisted sketches off its content fingerprint.
Evolving-network workloads therefore model a mutation as a *transition
between two immutable snapshots*: each primitive here builds a fresh
``DiGraph`` from the edited edge arrays (full CSR re-materialization, O(m))
and returns a :class:`GraphDelta` describing exactly what moved.

The delta is what makes *incremental* downstream repair possible.  RR-set
machinery addresses edges by their position in the **in-CSR** arrays
(``in_ptr``/``in_idx``/``in_prob`` — the arrays the reverse traversals
walk), so the delta records

* the touched edge's old in-CSR position (``in_pos``) and the old in-CSR
  slice ``[slice_lo, slice_hi)`` of its destination node, and
* how every *other* in-CSR edge id shifts across the re-materialization
  (:meth:`GraphDelta.remap_edge_ids`) — a pure ±1 threshold shift, because
  the CSR build is a stable sort by destination and insertions append to
  the input edge list (a new edge lands *last* in its destination's slice).

Deletion and reweighting resolve parallel ``u -> v`` duplicates to the
first match in input-edge order, which by stability is also the first match
in the destination's in-CSR slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.validation import check_node, require

__all__ = [
    "GraphDelta",
    "insert_edge",
    "delete_edge",
    "reweight_edge",
    "locate_edge",
]


@dataclass(frozen=True)
class GraphDelta:
    """One edge mutation between two immutable graph snapshots.

    ``in_pos`` is the edge's position in the **old** graph's in-CSR arrays
    for ``delete``/``reweight``; for ``insert`` it is the new edge's
    position in the **new** graph's in-CSR arrays (which equals
    ``slice_hi``, the old end of the destination's slice, because the new
    edge sorts last within the slice).  ``slice_lo``/``slice_hi`` bound the
    destination node's in-CSR slice in the *old* graph.
    """

    op: str
    u: int
    v: int
    old_prob: float | None
    new_prob: float | None
    edge_index: int | None
    in_pos: int
    slice_lo: int
    slice_hi: int
    old_graph: DiGraph
    new_graph: DiGraph
    old_fingerprint: str
    new_fingerprint: str

    def remap_edge_ids(self, ids: np.ndarray) -> np.ndarray:
        """Map old-graph in-CSR edge ids into the new graph's id space.

        Only valid for ids that still exist after the mutation (a deleted
        edge's own id must not be passed — downstream repair resamples every
        RR set whose trace contains it, so surviving traces never do).
        """
        ids = np.asarray(ids)
        if self.op == "insert":
            # Ids at/after the old end of v's slice shift up by one to make
            # room for the appended edge (which takes id ``slice_hi``).
            return ids + (ids >= self.slice_hi)
        if self.op == "delete":
            return ids - (ids > self.in_pos)
        return ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        prob = "" if self.new_prob is None else f", p={self.new_prob:g}"
        return f"GraphDelta({self.op} {self.u}->{self.v}{prob})"


def locate_edge(graph: DiGraph, u: int, v: int) -> tuple[int, int]:
    """``(input_edge_index, in_csr_position)`` of the first ``u -> v`` edge.

    Both "firsts" agree: the in-CSR build sorts stably by destination, so
    within ``v``'s slice the sources appear in input-edge order.
    """
    u = check_node(u, graph.n)
    v = check_node(v, graph.n)
    lo, hi = int(graph.in_ptr[v]), int(graph.in_ptr[v + 1])
    matches = np.flatnonzero(graph.in_idx[lo:hi] == u)
    if matches.size == 0:
        raise KeyError(f"no edge {u} -> {v}")
    in_pos = lo + int(matches[0])
    edge_index = int(np.flatnonzero((graph.src == u) & (graph.dst == v))[0])
    return edge_index, in_pos


def _delta(op, u, v, old_prob, new_prob, edge_index, in_pos, graph, new_graph) -> GraphDelta:
    lo, hi = int(graph.in_ptr[v]), int(graph.in_ptr[v + 1])
    return GraphDelta(
        op=op,
        u=int(u),
        v=int(v),
        old_prob=old_prob,
        new_prob=new_prob,
        edge_index=edge_index,
        in_pos=in_pos,
        slice_lo=lo,
        slice_hi=hi,
        old_graph=graph,
        new_graph=new_graph,
        old_fingerprint=graph.fingerprint(),
        new_fingerprint=new_graph.fingerprint(),
    )


def insert_edge(graph: DiGraph, u: int, v: int, prob: float) -> GraphDelta:
    """A new snapshot with edge ``u -> v`` (probability ``prob``) appended.

    Parallel edges are allowed, matching :class:`DiGraph` semantics; the new
    edge is appended to the input edge list, so it materialises *last*
    within ``v``'s in-CSR slice and every pre-existing in-CSR id is either
    unchanged or shifted up by exactly one.
    """
    u = check_node(u, graph.n)
    v = check_node(v, graph.n)
    require(0.0 <= prob <= 1.0, f"edge probability must lie in [0, 1]; got {prob}")
    src = np.append(graph.src, np.int64(u))
    dst = np.append(graph.dst, np.int64(v))
    probs = np.append(graph.prob, np.float64(prob))
    new_graph = DiGraph(graph.n, src, dst, probs)
    # The appended edge's id in the NEW graph: old end of v's slice.
    in_pos = int(graph.in_ptr[v + 1])
    return _delta("insert", u, v, None, float(prob), int(graph.m), in_pos, graph, new_graph)


def delete_edge(graph: DiGraph, u: int, v: int) -> GraphDelta:
    """A new snapshot with the first ``u -> v`` edge removed."""
    edge_index, in_pos = locate_edge(graph, u, v)
    old_prob = float(graph.prob[edge_index])
    src = np.delete(graph.src, edge_index)
    dst = np.delete(graph.dst, edge_index)
    probs = np.delete(graph.prob, edge_index)
    new_graph = DiGraph(graph.n, src, dst, probs)
    return _delta("delete", u, v, old_prob, None, edge_index, in_pos, graph, new_graph)


def reweight_edge(graph: DiGraph, u: int, v: int, prob: float) -> GraphDelta:
    """A new snapshot with the first ``u -> v`` edge's probability replaced."""
    require(0.0 <= prob <= 1.0, f"edge probability must lie in [0, 1]; got {prob}")
    edge_index, in_pos = locate_edge(graph, u, v)
    old_prob = float(graph.prob[edge_index])
    probs = graph.prob.copy()
    probs[edge_index] = prob
    new_graph = DiGraph(graph.n, graph.src, graph.dst, probs)
    return _delta("reweight", u, v, old_prob, float(prob), edge_index, in_pos, graph, new_graph)
